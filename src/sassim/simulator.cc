#include "sassim/simulator.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>
#include <memory>

#include "common/bitutil.h"
#include "sassim/decoded.h"
#include "sassim/exec_threaded.h"
#include "sassim/exec_vec.h"
#include "sassim/profiler.h"

namespace gfi::sim {
namespace {

constexpr u64 kDefaultWatchdog = 256ULL << 20;  // 256M warp instructions
constexpr u32 kFullMask = 0xffffffffu;

/// Integer compare dispatch for ISETP (and address compares).
bool int_compare(CmpOp cmp, u64 a, u64 b, DType dtype) {
  if (dtype == DType::kS32) {
    const i32 sa = static_cast<i32>(static_cast<u32>(a));
    const i32 sb = static_cast<i32>(static_cast<u32>(b));
    switch (cmp) {
      case CmpOp::kLt: return sa < sb;
      case CmpOp::kLe: return sa <= sb;
      case CmpOp::kGt: return sa > sb;
      case CmpOp::kGe: return sa >= sb;
      case CmpOp::kEq: return sa == sb;
      case CmpOp::kNe: return sa != sb;
    }
  }
  if (dtype == DType::kU32) {
    a = static_cast<u32>(a);
    b = static_cast<u32>(b);
  }
  switch (cmp) {
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
  }
  return false;
}

template <typename F>
bool fp_compare(CmpOp cmp, F a, F b) {
  switch (cmp) {
    case CmpOp::kLt: return a < b;
    case CmpOp::kLe: return a <= b;
    case CmpOp::kGt: return a > b;
    case CmpOp::kGe: return a >= b;
    case CmpOp::kEq: return a == b;
    case CmpOp::kNe: return a != b;
  }
  return false;
}

f32 mufu_eval(MufuKind kind, f32 x) {
  switch (kind) {
    case MufuKind::kRcp: return 1.0f / x;
    case MufuKind::kSqrt: return std::sqrt(x);
    case MufuKind::kRsq: return 1.0f / std::sqrt(x);
    case MufuKind::kExp2: return std::exp2(x);
    case MufuKind::kLog2: return std::log2(x);
    case MufuKind::kSin: return std::sin(x);
    case MufuKind::kCos: return std::cos(x);
  }
  return x;
}

// ---------------------------------------------------------------------------
// Instrumentation policies
// ---------------------------------------------------------------------------
//
// The execution core is templated over one of these tags. The Instrumented
// instantiation reproduces the historical inner loop bit-for-bit:
// InstrContext built per dynamic instruction, guard mask computed before
// *and* after the on_before hooks (predicate injection must take effect),
// store addresses routed through transform_store_address. The Clean
// instantiation strips every one of those: no context, no hook dispatch, a
// single guard-mask computation with a fast path for unguarded (@PT)
// instructions. The Threaded instantiation replaces Clean's opcode switch
// with direct dispatch on the predecoded handler ids (exec_threaded.h) —
// same scheduler, same accounting, bit-identical observables.

struct CleanPolicy {
  static constexpr bool kInstrumented = false;
  static constexpr bool kThreaded = false;
};
struct InstrumentedPolicy {
  static constexpr bool kInstrumented = true;
  static constexpr bool kThreaded = false;
};
struct ThreadedPolicy {
  static constexpr bool kInstrumented = false;
  static constexpr bool kThreaded = true;
};

/// How one engine run over the launch state ended.
enum class RunExit : u8 {
  kCompleted,   ///< every CTA retired
  kTrapped,     ///< Engine::trap fired
  kDowngraded,  ///< all hooks done observing: continue on the clean path
};

}  // namespace

// ---------------------------------------------------------------------------
// CTA state
// ---------------------------------------------------------------------------

struct Simulator::Cta {
  u32 linear_id = 0;
  Dim3 ctaid;
  std::vector<WarpState> warps;
  std::vector<u8> shared;

  [[nodiscard]] bool finished() const {
    for (const auto& warp : warps) {
      if (!warp.done()) return false;
    }
    return true;
  }
};

// ---------------------------------------------------------------------------
// Launch engine
// ---------------------------------------------------------------------------

// All mutable launch progress lives here — resident CTA pools, grid cursor,
// cycle and instruction counters — so a run can stop mid-launch (RunExit::
// kDowngraded), and a second run under a different policy resumes from the
// identical architectural state.
struct Simulator::Engine {
  const MachineConfig& cfg;
  GlobalMemory& mem;
  const Program& prog;
  const DecodedProgram& dec;
  Dim3 grid;
  Dim3 block;
  std::span<const u64> params;
  const LaunchOptions& opts;

  u32 threads_per_cta = 0;
  u32 warps_per_cta = 0;
  u32 occupancy = 0;
  u64 watchdog = kDefaultWatchdog;

  std::vector<std::vector<std::unique_ptr<Cta>>> resident;
  u64 resident_count = 0;
  u64 total_ctas = 0;
  u64 next_cta = 0;

  u64 dyn_warp = 0;
  u64 dyn_thread = 0;
  u64 cycle = 0;
  Trap trap;

  Engine(const MachineConfig& cfg_in, GlobalMemory& mem_in,
         const Program& prog_in, Dim3 grid_in, Dim3 block_in,
         std::span<const u64> params_in, const LaunchOptions& opts_in)
      : cfg(cfg_in),
        mem(mem_in),
        prog(prog_in),
        dec(prog_in.decoded()),
        grid(grid_in),
        block(block_in),
        params(params_in),
        opts(opts_in) {}

  // ---- CTA lifecycle ------------------------------------------------------

  std::unique_ptr<Cta> make_cta(u64 linear) const {
    auto cta = std::make_unique<Cta>();
    cta->linear_id = static_cast<u32>(linear);
    cta->ctaid =
        Dim3(static_cast<u32>(linear % grid.x),
             static_cast<u32>((linear / grid.x) % grid.y),
             static_cast<u32>(linear / (static_cast<u64>(grid.x) * grid.y)));
    cta->shared.assign(prog.shared_bytes(), 0);
    cta->warps.reserve(warps_per_cta);
    u32 remaining = threads_per_cta;
    for (u32 w = 0; w < warps_per_cta; ++w) {
      const u32 lanes = std::min(remaining, kWarpSize);
      const u32 mask = lanes == kWarpSize ? kFullMask : ((1u << lanes) - 1u);
      cta->warps.emplace_back(w, prog.num_regs(), mask);
      remaining -= lanes;
    }
    return cta;
  }

  void admit(u32 sm) {
    while (resident[sm].size() < occupancy && next_cta < total_ctas) {
      resident[sm].push_back(make_cta(next_cta++));
      ++resident_count;
    }
  }

  // ---- operand access -----------------------------------------------------

  // Hot enough that the out-of-line call overhead is measurable on the
  // clean path; force both into their (many) call sites.
  [[gnu::always_inline]] u64 read_operand(const WarpState& warp, u32 lane,
                                          const DecodedOperand& operand,
                                          DType dtype) const {
    switch (operand.kind) {
      case OperandKind::kImm:
        return operand.imm;
      case OperandKind::kReg:
        return (dtype == DType::kU64 || dtype == DType::kF64)
                   ? warp.reg64(lane, operand.index)
                   : warp.reg(lane, operand.index);
      case OperandKind::kPred:
        return warp.pred(lane, static_cast<u8>(operand.index)) !=
               operand.negated;
      case OperandKind::kNone:
        return 0;
    }
    return 0;
  }

  [[gnu::always_inline]] static void write_dst(WarpState& warp, u32 lane,
                                               const DecodedInstr& instr,
                                               u64 value) {
    if (instr.wide) {
      warp.set_reg64(lane, instr.dst_index, value);
    } else {
      warp.set_reg(lane, instr.dst_index, lo32(value));
    }
  }

  // ---- special registers --------------------------------------------------

  u32 special_value(const Cta& cta, const WarpState& warp, u32 lane,
                    SpecialReg sr) const {
    const u32 lin = warp.warp_in_cta() * kWarpSize + lane;
    switch (sr) {
      case SpecialReg::kTidX: return lin % block.x;
      case SpecialReg::kTidY: return (lin / block.x) % block.y;
      case SpecialReg::kTidZ: return lin / (block.x * block.y);
      case SpecialReg::kCtaidX: return cta.ctaid.x;
      case SpecialReg::kCtaidY: return cta.ctaid.y;
      case SpecialReg::kCtaidZ: return cta.ctaid.z;
      case SpecialReg::kNtidX: return block.x;
      case SpecialReg::kNtidY: return block.y;
      case SpecialReg::kNtidZ: return block.z;
      case SpecialReg::kNctaidX: return grid.x;
      case SpecialReg::kNctaidY: return grid.y;
      case SpecialReg::kNctaidZ: return grid.z;
      case SpecialReg::kLaneId: return lane;
      case SpecialReg::kWarpId: return warp.warp_in_cta();
    }
    return 0;
  }

  // ---- trap helper --------------------------------------------------------

  TrapKind fire(TrapKind kind, const Cta& cta, const WarpState& warp,
                u64 address = 0) {
    trap.kind = kind;
    trap.address = address;
    trap.pc = warp.pc;
    trap.cta = cta.linear_id;
    trap.warp = warp.warp_in_cta();
    return kind;
  }

  // ---- native profile collection ------------------------------------------

  /// Counts one dynamic warp instruction into opts.profile, reproducing
  /// ProfilerHook's accumulation (which sees the first guard mask).
  void count_profile(const DecodedInstr& instr, u32 exec) const {
    Profile& p = *opts.profile;
    ++p.warp_instrs_by_opcode[static_cast<int>(instr.op)];
    ++p.warp_instrs_by_group[static_cast<int>(instr.group)];
    const u64 lanes = static_cast<u64>(std::popcount(exec));
    p.thread_instrs_by_group[static_cast<int>(instr.group)] += lanes;
    ++p.total_warp_instrs;
    p.total_thread_instrs += lanes;
  }

  // ---- one dynamic warp instruction ---------------------------------------

  template <typename Policy>
  TrapKind exec_instr(Cta& cta, WarpState& warp, const DecodedInstr& instr) {
    if constexpr (Policy::kInstrumented) {
      InstrContext ctx;
      ctx.instr = &prog.at(warp.pc);
      ctx.group = instr.group;
      ctx.dyn_index = dyn_warp;
      ctx.cta = cta.linear_id;
      ctx.warp = warp.warp_in_cta();
      ctx.warp_state = &warp;

      ctx.exec_mask = warp.guard_mask(instr.guard_pred, instr.guard_negated);
      ++dyn_warp;
      dyn_thread += static_cast<u64>(std::popcount(ctx.exec_mask));
      if (opts.profile) count_profile(instr, ctx.exec_mask);

      for (InstrumentHook* hook : opts.hooks) {
        hook->on_before_instr(ctx);
        if (ctx.requested_trap != TrapKind::kNone) {
          return fire(ctx.requested_trap, cta, warp);
        }
      }
      // Hooks may have mutated predicates (predicate-register injection);
      // recompute the executed lane set so the corruption takes effect.
      const u32 exec = warp.guard_mask(instr.guard_pred, instr.guard_negated);
      ctx.exec_mask = exec;

      TrapKind result = dispatch<Policy>(cta, warp, instr, exec, &ctx);
      if (result != TrapKind::kNone) return result;

      for (InstrumentHook* hook : opts.hooks) {
        hook->on_after_instr(ctx);
        if (ctx.requested_trap != TrapKind::kNone) {
          return fire(ctx.requested_trap, cta, warp);
        }
      }
      return TrapKind::kNone;
    } else if constexpr (Policy::kThreaded) {
      // Threaded tier: handlers do their own exec-mask computation and
      // accounting (fusion heads and tails must each count exactly once),
      // so the whole slot is one direct-dispatched call.
      return exec::threaded_dispatch(*this, cta, warp, instr);
    } else {
      // Clean path: nothing can mutate predicates between issue and
      // execute, so one guard-mask computation suffices — and an unguarded
      // (@PT) instruction executes exactly the active set.
      const u32 exec =
          instr.guarded
              ? warp.guard_mask_fast(instr.guard_pred, instr.guard_negated)
              : warp.active();
      ++dyn_warp;
      dyn_thread += static_cast<u64>(std::popcount(exec));
      if (opts.profile) count_profile(instr, exec);
      return dispatch<Policy>(cta, warp, instr, exec, nullptr);
    }
  }

  /// Non-template entry into the generic clean dispatcher for the threaded
  /// tier's fallbacks (exec_threaded.h is duck-typed over Engine and cannot
  /// name the policy tags in this anonymous namespace). `exec` is already
  /// accounted by the caller.
  TrapKind dispatch_clean(Cta& cta, WarpState& warp, const DecodedInstr& instr,
                          u32 exec) {
    return dispatch<CleanPolicy>(cta, warp, instr, exec, nullptr);
  }

  // Executes `instr` for lanes in `exec`; manages the PC. `ctx` is non-null
  // only on the instrumented path (store-address transforms).
  template <typename Policy>
  TrapKind dispatch(Cta& cta, WarpState& warp, const DecodedInstr& instr,
                    u32 exec, [[maybe_unused]] InstrContext* ctx) {
    // Full-warp vector fast path: pure register/immediate ALU ops with all
    // 32 lanes executing skip the per-lane operand machinery entirely and
    // run on simd rows (exec_vec.h). Clean policy only: the instrumented
    // path keeps the generic per-lane loop below, whose cost is part of the
    // preserved pre-refactor inner loop it stands in for.
    if (!Policy::kInstrumented && exec == kFullMask && instr.vec_srcs &&
        exec::vec_alu(warp, instr)) {
      ++warp.pc;
      return TrapKind::kNone;
    }

    auto for_each_lane = [&](auto&& body) {
      // Bit-scan over the executed set: lane order preserved, no per-lane
      // test for the (common) sparse and full masks alike.
      for (u32 rest = exec; rest != 0; rest &= rest - 1) {
        body(static_cast<u32>(std::countr_zero(rest)));
      }
    };
    auto src = [&](u32 lane, int i, DType dtype) {
      return read_operand(warp, lane, instr.src[i], dtype);
    };

    switch (instr.op) {
      // ---- control ------------------------------------------------------
      case Opcode::kNop:
        break;

      case Opcode::kExit: {
        const u32 rest = warp.active() & ~exec;
        warp.retire_lanes(exec);
        if (rest != 0) ++warp.pc;
        return TrapKind::kNone;
      }

      case Opcode::kSsy:
        warp.stack().push_back(
            {warp.active(), instr.target, StackEntry::Kind::kSsy});
        break;

      case Opcode::kBra: {
        const u32 taken = exec;
        const u32 not_taken = warp.active() & ~exec;
        if (taken == 0) {
          ++warp.pc;
        } else if (not_taken == 0) {
          warp.pc = instr.target;
        } else {
          warp.stack().push_back({taken, instr.target, StackEntry::Kind::kDiv});
          warp.set_active(not_taken);
          ++warp.pc;
        }
        return TrapKind::kNone;
      }

      case Opcode::kSync: {
        if (warp.stack().empty()) {
          return fire(TrapKind::kIllegalInstruction, cta, warp);
        }
        const StackEntry entry = warp.stack().back();
        warp.stack().pop_back();
        if (entry.kind == StackEntry::Kind::kDiv && entry.mask != 0) {
          warp.set_active(entry.mask);
          warp.pc = entry.pc;
        } else if (entry.kind == StackEntry::Kind::kSsy) {
          warp.set_active(entry.mask);
          ++warp.pc;
        } else {
          ++warp.pc;  // emptied divergence entry: fall through
        }
        return TrapKind::kNone;
      }

      case Opcode::kBar: {
        warp.at_barrier = true;
        ++warp.pc;
        // Release when every warp that can still arrive has arrived.
        bool all_arrived = true;
        for (const auto& other : cta.warps) {
          if (!other.done() && !other.at_barrier) {
            all_arrived = false;
            break;
          }
        }
        if (all_arrived) {
          for (auto& other : cta.warps) other.at_barrier = false;
        }
        return TrapKind::kNone;
      }

      // ---- moves / selects ------------------------------------------------
      case Opcode::kMov:
        for_each_lane([&](u32 lane) {
          write_dst(warp, lane, instr, src(lane, 0, instr.dtype));
        });
        break;

      case Opcode::kSel:
        for_each_lane([&](u32 lane) {
          const bool take =
              read_operand(warp, lane, instr.src[2], DType::kU32) != 0;
          write_dst(warp, lane, instr,
                    take ? src(lane, 0, instr.dtype)
                         : src(lane, 1, instr.dtype));
        });
        break;

      case Opcode::kS2r:
        for_each_lane([&](u32 lane) {
          warp.set_reg(lane, instr.dst_index,
                       special_value(cta, warp, lane,
                                     static_cast<SpecialReg>(instr.sub)));
        });
        break;

      case Opcode::kLdc: {
        const u64 idx = instr.src[0].imm;
        if (idx >= params.size()) {
          return fire(TrapKind::kIllegalInstruction, cta, warp);
        }
        const u64 value = params[idx];
        // Uniform broadcast: with every lane executing the destination
        // row(s) take the same value, no per-lane machinery needed.
        if (exec == kFullMask && instr.dst_index != kRegZ) {
          u32* dlo = warp.row(instr.dst_index);
          if (instr.wide) {
            u32* dhi = warp.row(static_cast<u16>(instr.dst_index + 1));
            for (u32 l = 0; l < kWarpSize; ++l) {
              dlo[l] = lo32(value);
              dhi[l] = hi32(value);
            }
          } else {
            for (u32 l = 0; l < kWarpSize; ++l) dlo[l] = lo32(value);
          }
          break;
        }
        for_each_lane([&](u32 lane) { write_dst(warp, lane, instr, value); });
        break;
      }

      // ---- integer ALU ----------------------------------------------------
      case Opcode::kIAdd:
        for_each_lane([&](u32 lane) {
          write_dst(warp, lane, instr,
                    src(lane, 0, instr.dtype) + src(lane, 1, instr.dtype));
        });
        break;

      case Opcode::kIMul:
        for_each_lane([&](u32 lane) {
          write_dst(warp, lane, instr,
                    src(lane, 0, instr.dtype) * src(lane, 1, instr.dtype));
        });
        break;

      case Opcode::kIMad:
        for_each_lane([&](u32 lane) {
          if (instr.dtype == DType::kU64) {
            // IMAD.WIDE: 32x32-bit product added to a 64-bit accumulator —
            // the canonical SASS address-computation idiom.
            const u64 a = static_cast<u32>(src(lane, 0, DType::kU32));
            const u64 b = static_cast<u32>(src(lane, 1, DType::kU32));
            write_dst(warp, lane, instr, a * b + src(lane, 2, DType::kU64));
          } else {
            write_dst(warp, lane, instr,
                      src(lane, 0, instr.dtype) * src(lane, 1, instr.dtype) +
                          src(lane, 2, instr.dtype));
          }
        });
        break;

      case Opcode::kIMnmx:
        for_each_lane([&](u32 lane) {
          const u64 a = src(lane, 0, instr.dtype);
          const u64 b = src(lane, 1, instr.dtype);
          const bool a_less = int_compare(CmpOp::kLt, a, b, instr.dtype);
          const bool want_min = instr.sub == static_cast<u8>(MinMax::kMin);
          write_dst(warp, lane, instr, (a_less == want_min) ? a : b);
        });
        break;

      case Opcode::kISetp:
        for_each_lane([&](u32 lane) {
          const bool value =
              int_compare(static_cast<CmpOp>(instr.sub),
                          src(lane, 0, instr.dtype), src(lane, 1, instr.dtype),
                          instr.dtype);
          warp.set_pred(lane, static_cast<u8>(instr.dst_index), value);
        });
        break;

      case Opcode::kLop:
        for_each_lane([&](u32 lane) {
          const u64 a = src(lane, 0, instr.dtype);
          const u64 b = src(lane, 1, instr.dtype);
          u64 value = 0;
          switch (static_cast<LopKind>(instr.sub)) {
            case LopKind::kAnd: value = a & b; break;
            case LopKind::kOr: value = a | b; break;
            case LopKind::kXor: value = a ^ b; break;
            case LopKind::kNot: value = ~a; break;
          }
          write_dst(warp, lane, instr, value);
        });
        break;

      case Opcode::kShf:
        for_each_lane([&](u32 lane) {
          const u64 a = src(lane, 0, instr.dtype);
          const u32 amount = static_cast<u32>(src(lane, 1, DType::kU32)) &
                             (instr.wide ? 63u : 31u);
          u64 value = 0;
          switch (static_cast<ShiftKind>(instr.sub)) {
            case ShiftKind::kLeft:
              value = a << amount;
              break;
            case ShiftKind::kRightLogical:
              value = (instr.wide ? a : static_cast<u64>(static_cast<u32>(a)))
                      >> amount;
              break;
            case ShiftKind::kRightArith:
              if (instr.wide) {
                value = static_cast<u64>(static_cast<i64>(a) >> amount);
              } else {
                value = static_cast<u32>(
                    static_cast<i32>(static_cast<u32>(a)) >> amount);
              }
              break;
          }
          write_dst(warp, lane, instr, value);
        });
        break;

      case Opcode::kPopc:
        for_each_lane([&](u32 lane) {
          const u64 a = src(lane, 0, instr.dtype);
          write_dst(warp, lane, instr,
                    static_cast<u64>(std::popcount(
                        instr.wide ? a : static_cast<u64>(static_cast<u32>(a)))));
        });
        break;

      // ---- floating point ---------------------------------------------------
      case Opcode::kFAdd:
      case Opcode::kFMul:
      case Opcode::kFMnmx:
        for_each_lane([&](u32 lane) {
          if (instr.dtype == DType::kF64) {
            const f64 a = bits_f64(src(lane, 0, DType::kF64));
            const f64 b = bits_f64(src(lane, 1, DType::kF64));
            f64 value = 0;
            // canon_nan: NaN-payload results of +/* are not stable across
            // compilations (bitutil.h); FMNMX passes operand bits through.
            if (instr.op == Opcode::kFAdd) value = canon_nan(a + b);
            else if (instr.op == Opcode::kFMul) value = canon_nan(a * b);
            else value = instr.sub == static_cast<u8>(MinMax::kMin)
                             ? fmin_det(a, b) : fmax_det(a, b);
            write_dst(warp, lane, instr, f64_bits(value));
          } else {
            const f32 a = bits_f32(static_cast<u32>(src(lane, 0, DType::kF32)));
            const f32 b = bits_f32(static_cast<u32>(src(lane, 1, DType::kF32)));
            f32 value = 0;
            if (instr.op == Opcode::kFAdd) value = canon_nan(a + b);
            else if (instr.op == Opcode::kFMul) value = canon_nan(a * b);
            else value = instr.sub == static_cast<u8>(MinMax::kMin)
                             ? fmin_det(a, b) : fmax_det(a, b);
            write_dst(warp, lane, instr, f32_bits(value));
          }
        });
        break;

      case Opcode::kFFma:
        for_each_lane([&](u32 lane) {
          if (instr.dtype == DType::kF64) {
            const f64 a = bits_f64(src(lane, 0, DType::kF64));
            const f64 b = bits_f64(src(lane, 1, DType::kF64));
            const f64 c = bits_f64(src(lane, 2, DType::kF64));
            write_dst(warp, lane, instr, f64_bits(canon_nan(std::fma(a, b, c))));
          } else {
            const f32 a = bits_f32(static_cast<u32>(src(lane, 0, DType::kF32)));
            const f32 b = bits_f32(static_cast<u32>(src(lane, 1, DType::kF32)));
            const f32 c = bits_f32(static_cast<u32>(src(lane, 2, DType::kF32)));
            write_dst(warp, lane, instr, f32_bits(canon_nan(std::fmaf(a, b, c))));
          }
        });
        break;

      case Opcode::kFSetp:
        for_each_lane([&](u32 lane) {
          bool value = false;
          if (instr.dtype == DType::kF64) {
            value = fp_compare(static_cast<CmpOp>(instr.sub),
                               bits_f64(src(lane, 0, DType::kF64)),
                               bits_f64(src(lane, 1, DType::kF64)));
          } else {
            value = fp_compare(
                static_cast<CmpOp>(instr.sub),
                bits_f32(static_cast<u32>(src(lane, 0, DType::kF32))),
                bits_f32(static_cast<u32>(src(lane, 1, DType::kF32))));
          }
          warp.set_pred(lane, static_cast<u8>(instr.dst_index), value);
        });
        break;

      case Opcode::kMufu:
        for_each_lane([&](u32 lane) {
          const f32 x = bits_f32(static_cast<u32>(src(lane, 0, DType::kF32)));
          write_dst(warp, lane, instr,
                    f32_bits(mufu_eval(static_cast<MufuKind>(instr.sub), x)));
        });
        break;

      case Opcode::kF2I:
        for_each_lane([&](u32 lane) {
          f64 x = 0;
          if (instr.dtype == DType::kF64) {
            x = bits_f64(src(lane, 0, DType::kF64));
          } else {
            x = bits_f32(static_cast<u32>(src(lane, 0, DType::kF32)));
          }
          i32 value = 0;
          if (std::isnan(x)) value = 0;
          else if (x >= 2147483647.0) value = std::numeric_limits<i32>::max();
          else if (x <= -2147483648.0) value = std::numeric_limits<i32>::min();
          else value = static_cast<i32>(x);
          warp.set_reg(lane, instr.dst_index, static_cast<u32>(value));
        });
        break;

      case Opcode::kI2F:
        for_each_lane([&](u32 lane) {
          const i32 x = static_cast<i32>(
              static_cast<u32>(src(lane, 0, DType::kS32)));
          if (instr.dtype == DType::kF64) {
            write_dst(warp, lane, instr, f64_bits(static_cast<f64>(x)));
          } else {
            write_dst(warp, lane, instr, f32_bits(static_cast<f32>(x)));
          }
        });
        break;

      case Opcode::kF2F:
        for_each_lane([&](u32 lane) {
          if (instr.dtype == DType::kF64) {  // widen F32 -> F64
            const f32 x = bits_f32(static_cast<u32>(src(lane, 0, DType::kF32)));
            write_dst(warp, lane, instr, f64_bits(static_cast<f64>(x)));
          } else {  // narrow F64 -> F32
            const f64 x = bits_f64(src(lane, 0, DType::kF64));
            write_dst(warp, lane, instr, f32_bits(static_cast<f32>(x)));
          }
        });
        break;

      // ---- memory --------------------------------------------------------
      case Opcode::kLdg:
      case Opcode::kStg: {
        const u32 width = instr.mem_width;
        // Hoisted full-warp 32-bit load: register-pair base plus immediate
        // offset, destination written row-wise. Lane order, trap checks and
        // partial progress on a trap match the generic loop exactly; any
        // pending upset bails to the generic loop so ECC classification is
        // never skipped.
        if (!Policy::kInstrumented && instr.op == Opcode::kLdg &&
            exec == kFullMask && width == 4 &&
            instr.src[0].kind == OperandKind::kReg &&
            instr.src[0].index != kRegZ && instr.dst_index != kRegZ &&
            mem.fault_free()) {
          const exec::RowMemResult row = exec::ldg_row(warp, instr, mem);
          if (row.state == exec::RowMem::kTrap) {
            return fire(row.trap, cta, warp, row.addr);
          }
          if (row.state == exec::RowMem::kDone) break;
          // kNotApplicable: a lane would trap on alignment; the generic
          // loop below reproduces the exact lane-order trap.
        }
        // Matching full-warp 32-bit store. Clean policy only (which implies
        // no hooks): store-address transforms must see every lane
        // individually, and the instrumented baseline keeps the lane loop.
        if (!Policy::kInstrumented && instr.op == Opcode::kStg &&
            exec == kFullMask && width == 4 && mem.fault_free() &&
            instr.src[0].kind == OperandKind::kReg &&
            instr.src[0].index != kRegZ &&
            instr.src[2].kind == OperandKind::kReg &&
            instr.src[2].index != kRegZ) {
          const exec::RowMemResult row = exec::stg_row(warp, instr, mem);
          if (row.state == exec::RowMem::kTrap) {
            return fire(row.trap, cta, warp, row.addr);
          }
          if (row.state == exec::RowMem::kDone) break;
        }
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
          if (!((exec >> lane) & 1u)) continue;
          u64 addr = read_operand(warp, lane, instr.src[0], DType::kU64);
          if (instr.src[1].is_imm()) addr += instr.src[1].imm;
          if constexpr (Policy::kInstrumented) {
            if (instr.op == Opcode::kStg) {
              for (InstrumentHook* hook : opts.hooks) {
                addr = hook->transform_store_address(addr, *ctx, lane);
              }
            }
          }
          if (addr % width != 0) {
            return fire(TrapKind::kMisalignedAddress, cta, warp, addr);
          }
          u8 buffer[8] = {};
          if (instr.op == Opcode::kLdg) {
            if (TrapKind t = mem.read(addr, buffer, width);
                t != TrapKind::kNone) {
              return fire(t, cta, warp, addr);
            }
            u64 value = 0;
            std::memcpy(&value, buffer, width);
            if (width == 8) {
              warp.set_reg64(lane, instr.dst_index, value);
            } else {
              warp.set_reg(lane, instr.dst_index, static_cast<u32>(value));
            }
          } else {
            u64 value = width == 8
                            ? warp.reg64(lane, instr.src[2].index)
                            : warp.reg(lane, instr.src[2].index);
            std::memcpy(buffer, &value, width);
            if (TrapKind t = mem.write(addr, buffer, width);
                t != TrapKind::kNone) {
              return fire(t, cta, warp, addr);
            }
          }
        }
        break;
      }

      case Opcode::kLds:
      case Opcode::kSts: {
        const u32 width = instr.mem_width;
        // Hoisted full-warp 32-bit shared accesses, mirroring the LDG fast
        // path: address rows read once, identical trap checks in lane order.
        if (!Policy::kInstrumented && exec == kFullMask && width == 4 &&
            instr.src[0].kind == OperandKind::kReg &&
            instr.src[0].index != kRegZ) {
          if (instr.op == Opcode::kLds && instr.dst_index != kRegZ) {
            if (exec::lds_row(warp, instr, cta.shared.data(),
                              cta.shared.size())
                    .state == exec::RowMem::kDone) {
              break;
            }
          }
          if (instr.op == Opcode::kSts &&
              instr.src[2].kind == OperandKind::kReg &&
              instr.src[2].index != kRegZ) {
            if (exec::sts_row(warp, instr, cta.shared.data(),
                              cta.shared.size())
                    .state == exec::RowMem::kDone) {
              break;
            }
          }
          // Row path declined (a lane would trap): the generic loop below
          // reproduces the exact lane-order trap and partial progress.
        }
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
          if (!((exec >> lane) & 1u)) continue;
          u64 addr = static_cast<u32>(read_operand(warp, lane, instr.src[0],
                                                   DType::kU32));
          if (instr.src[1].is_imm()) addr += instr.src[1].imm;
          if (addr % width != 0) {
            return fire(TrapKind::kMisalignedAddress, cta, warp, addr);
          }
          if (addr + width > cta.shared.size()) {
            return fire(TrapKind::kIllegalSharedAddress, cta, warp, addr);
          }
          if (instr.op == Opcode::kLds) {
            u64 value = 0;
            std::memcpy(&value, cta.shared.data() + addr, width);
            if (width == 8) {
              warp.set_reg64(lane, instr.dst_index, value);
            } else {
              warp.set_reg(lane, instr.dst_index, static_cast<u32>(value));
            }
          } else {
            const u64 value = width == 8
                                  ? warp.reg64(lane, instr.src[2].index)
                                  : warp.reg(lane, instr.src[2].index);
            std::memcpy(cta.shared.data() + addr, &value, width);
          }
        }
        break;
      }

      case Opcode::kAtomG:
      case Opcode::kAtomS: {
        const bool global = instr.op == Opcode::kAtomG;
        const u32 width = instr.mem_width;  // 4 only (u32/s32/f32)
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
          if (!((exec >> lane) & 1u)) continue;
          u64 addr = 0;
          if (global) {
            addr = read_operand(warp, lane, instr.src[0], DType::kU64);
          } else {
            addr = static_cast<u32>(
                read_operand(warp, lane, instr.src[0], DType::kU32));
          }
          if (addr % width != 0) {
            return fire(TrapKind::kMisalignedAddress, cta, warp, addr);
          }
          u32 old = 0;
          if (global) {
            if (TrapKind t = mem.read(addr, &old, width);
                t != TrapKind::kNone) {
              return fire(t, cta, warp, addr);
            }
          } else {
            if (addr + width > cta.shared.size()) {
              return fire(TrapKind::kIllegalSharedAddress, cta, warp, addr);
            }
            std::memcpy(&old, cta.shared.data() + addr, width);
          }
          const u32 a = static_cast<u32>(
              read_operand(warp, lane, instr.src[1], instr.dtype));
          u32 updated = old;
          switch (static_cast<AtomKind>(instr.sub)) {
            case AtomKind::kAdd:
              if (instr.dtype == DType::kF32) {
                updated = f32_bits(canon_nan(bits_f32(old) + bits_f32(a)));
              } else {
                updated = old + a;
              }
              break;
            case AtomKind::kMin:
              if (instr.dtype == DType::kF32) {
                updated = f32_bits(fmin_det(bits_f32(old), bits_f32(a)));
              } else if (instr.dtype == DType::kS32) {
                updated = static_cast<u32>(std::min(static_cast<i32>(old),
                                                    static_cast<i32>(a)));
              } else {
                updated = std::min(old, a);
              }
              break;
            case AtomKind::kMax:
              if (instr.dtype == DType::kF32) {
                updated = f32_bits(fmax_det(bits_f32(old), bits_f32(a)));
              } else if (instr.dtype == DType::kS32) {
                updated = static_cast<u32>(std::max(static_cast<i32>(old),
                                                    static_cast<i32>(a)));
              } else {
                updated = std::max(old, a);
              }
              break;
            case AtomKind::kExch:
              updated = a;
              break;
            case AtomKind::kCas: {
              const u32 b = static_cast<u32>(
                  read_operand(warp, lane, instr.src[2], instr.dtype));
              updated = (old == a) ? b : old;
              break;
            }
          }
          if (global) {
            if (TrapKind t = mem.write(addr, &updated, width);
                t != TrapKind::kNone) {
              return fire(t, cta, warp, addr);
            }
          } else {
            std::memcpy(cta.shared.data() + addr, &updated, width);
          }
          if (instr.dst_kind == OperandKind::kReg &&
              instr.dst_index != kRegZ) {
            warp.set_reg(lane, instr.dst_index, old);
          }
        }
        break;
      }

      // ---- warp communication -------------------------------------------
      case Opcode::kShfl: {
        u32 gathered[kWarpSize] = {};
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
          gathered[lane] = warp.reg(lane, instr.src[0].index);
        }
        for_each_lane([&](u32 lane) {
          const u32 operand = static_cast<u32>(
              read_operand(warp, lane, instr.src[1], DType::kU32));
          i64 source = lane;
          switch (static_cast<ShflKind>(instr.sub)) {
            case ShflKind::kIdx: source = operand & 31u; break;
            case ShflKind::kUp: source = static_cast<i64>(lane) - operand; break;
            case ShflKind::kDown: source = static_cast<i64>(lane) + operand; break;
            case ShflKind::kBfly: source = lane ^ operand; break;
          }
          u32 value = gathered[lane];
          if (source >= 0 && source < kWarpSize &&
              ((exec >> source) & 1u) != 0) {
            value = gathered[source];
          }
          warp.set_reg(lane, instr.dst_index, value);
        });
        break;
      }

      case Opcode::kVote: {
        u32 votes = 0;
        for (u32 lane = 0; lane < kWarpSize; ++lane) {
          if (((exec >> lane) & 1u) &&
              read_operand(warp, lane, instr.src[0], DType::kU32) != 0) {
            votes |= 1u << lane;
          }
        }
        const auto kind = static_cast<VoteKind>(instr.sub);
        for_each_lane([&](u32 lane) {
          switch (kind) {
            case VoteKind::kAll:
              warp.set_pred(lane, static_cast<u8>(instr.dst_index),
                            (votes & exec) == exec);
              break;
            case VoteKind::kAny:
              warp.set_pred(lane, static_cast<u8>(instr.dst_index),
                            votes != 0);
              break;
            case VoteKind::kBallot:
              warp.set_reg(lane, instr.dst_index, votes);
              break;
          }
        });
        break;
      }

      // ---- tensor core ------------------------------------------------------
      case Opcode::kHmma: {
        if (exec != kFullMask) {
          return fire(TrapKind::kIllegalInstruction, cta, warp);
        }
        // m16n8k8: A(16x8) in 4 regs/lane, B(8x8) in 2, C/D(16x8) in 4.
        // Element e lives in lane (e % 32), slot (e / 32), row-major.
        f32 a_frag[128];
        f32 b_frag[64];
        f32 c_frag[128];
        for (u32 e = 0; e < 128; ++e) {
          a_frag[e] = bits_f32(warp.reg(e % kWarpSize,
                                        static_cast<u16>(instr.src[0].index + e / kWarpSize)));
          c_frag[e] = bits_f32(warp.reg(e % kWarpSize,
                                        static_cast<u16>(instr.src[2].index + e / kWarpSize)));
        }
        for (u32 e = 0; e < 64; ++e) {
          b_frag[e] = bits_f32(warp.reg(e % kWarpSize,
                                        static_cast<u16>(instr.src[1].index + e / kWarpSize)));
        }
        const bool tf32 = cfg.tensor_core_tf32;
        for (u32 i = 0; i < 16; ++i) {
          for (u32 j = 0; j < 8; ++j) {
            f32 acc = c_frag[i * 8 + j];
            for (u32 k = 0; k < 8; ++k) {
              const f32 a = tf32 ? to_tf32(a_frag[i * 8 + k]) : a_frag[i * 8 + k];
              const f32 b = tf32 ? to_tf32(b_frag[k * 8 + j]) : b_frag[k * 8 + j];
              acc = std::fmaf(a, b, acc);
            }
            const u32 e = i * 8 + j;
            warp.set_reg(e % kWarpSize,
                         static_cast<u16>(instr.dst_index + e / kWarpSize),
                         f32_bits(acc));
          }
        }
        break;
      }
    }

    ++warp.pc;
    return TrapKind::kNone;
  }

  // ---- the scheduler loop -------------------------------------------------

  // Runs the launch state forward under one instrumentation policy until it
  // completes, traps, or (instrumented only) every hook is done observing.
  template <typename Policy>
  RunExit run() {
    // Per-opcode issue latencies with the memory/shared overrides baked in,
    // so the issue loop is one table load instead of a branch chain.
    u8 latency_of[kOpcodeCount];
    for (int op = 0; op < kOpcodeCount; ++op) {
      latency_of[op] = cfg.latencies.of(static_cast<Opcode>(op));
    }
    latency_of[static_cast<int>(Opcode::kLdg)] =
        static_cast<u8>(std::min<u32>(255, cfg.mem_latency_cycles));
    latency_of[static_cast<int>(Opcode::kAtomG)] =
        static_cast<u8>(std::min<u32>(255, cfg.mem_latency_cycles));
    latency_of[static_cast<int>(Opcode::kLds)] =
        static_cast<u8>(std::min<u32>(255, cfg.shared_latency_cycles));
    latency_of[static_cast<int>(Opcode::kAtomS)] =
        static_cast<u8>(std::min<u32>(255, cfg.shared_latency_cycles));

    // Per-SM earliest next-issue cycle (0 = must scan). See the skip check
    // in the SM loop for why this cannot change scheduling decisions.
    std::vector<u64> sm_next(cfg.num_sms, 0);

    // SMs that still hold work, ascending. Small grids occupy a handful of
    // the model's SMs (a 16-CTA scan on the 108-SM A100 leaves 92 forever
    // idle), and the cycle loop used to scan all of them every cycle.
    // Iterating only busy SMs is behavior-identical: an idle SM's iteration
    // issues nothing and contributes the min-identity u64-max to the
    // fast-forward, and an SM whose pool drains can never wake again —
    // admit() backfills only from the SM's own retirement scan, so once
    // `resident[sm]` is empty (grid exhausted) it stays empty. Holds on
    // re-entry after a mid-launch downgrade for the same reason.
    std::vector<u32> busy;
    busy.reserve(cfg.num_sms);
    for (u32 sm = 0; sm < cfg.num_sms; ++sm) {
      if (!resident[sm].empty()) busy.push_back(sm);
    }

    while (resident_count > 0) {
      if constexpr (Policy::kInstrumented) {
        // Mid-launch downgrade: once every attached hook has finished
        // observing (e.g. a one-shot injector whose fault has fired), the
        // remaining instructions cannot be affected by instrumentation, so
        // the caller re-enters on a hook-free tier. Checked at a cycle
        // boundary; an explicitly pinned instrumented engine never
        // downgrades (benchmark/equivalence baseline).
        if (!opts.hooks.empty() && opts.engine != EngineTier::kInstrumented) {
          bool all_done = true;
          for (InstrumentHook* hook : opts.hooks) {
            if (!hook->done_observing()) {
              all_done = false;
              break;
            }
          }
          if (all_done) return RunExit::kDowngraded;
        }
      }

      bool issued_any = false;

      for (std::size_t bi = 0; bi < busy.size();) {
        const u32 sm = busy[bi];
        // An SM whose warps are all provably stalled until a known future
        // cycle needs no scan: nothing outside this SM can wake its warps
        // (barrier releases and CTA admission are triggered by issues
        // within the same SM). Skipping the scan cannot change which warp
        // issues when, so cycle counts stay bit-identical.
        if (sm_next[sm] > cycle) {
          ++bi;
          continue;
        }

        u32 budget = cfg.issue_width;
        bool warp_retired = false;
        // Earliest cycle any warp of this SM can issue next; invalidated
        // (forced to re-scan every cycle) by barrier traffic and CTA
        // turnover below.
        u64 next_ready = std::numeric_limits<u64>::max();
        bool next_valid = true;
        for (auto& cta : resident[sm]) {
          if (budget == 0) break;
          for (auto& warp : cta->warps) {
            if (budget == 0) break;
            if (warp.done() || warp.at_barrier) continue;
            if (warp.ready_cycle > cycle) {
              next_ready = std::min(next_ready, warp.ready_cycle);
              continue;
            }
            const DecodedInstr& di = dec.at(warp.pc);
            const Opcode op = di.op;
            const TrapKind trapped = exec_instr<Policy>(*cta, warp, di);
            issued_any = true;
            --budget;
            if (trapped != TrapKind::kNone) return RunExit::kTrapped;
            if (op == Opcode::kBar) next_valid = false;  // may park/release
            if (warp.done()) {
              warp_retired = true;
              // A warp that just retired can release siblings parked at a
              // barrier (they no longer need to wait for it).
              bool all_arrived = true;
              for (const auto& other : cta->warps) {
                if (!other.done() && !other.at_barrier) {
                  all_arrived = false;
                  break;
                }
              }
              if (all_arrived) {
                for (auto& other : cta->warps) other.at_barrier = false;
              }
            }
            warp.ready_cycle = cycle + latency_of[static_cast<int>(op)];
            next_ready = std::min(next_ready, warp.ready_cycle);
            if (dyn_warp >= watchdog) {
              trap = Trap{TrapKind::kWatchdogTimeout, 0, warp.pc,
                          cta->linear_id, warp.warp_in_cta()};
              return RunExit::kTrapped;
            }
          }
        }
        if (budget == 0) next_valid = false;  // unscanned warps may be ready

        // Retire finished CTAs and backfill from the grid. A CTA can only
        // finish on a cycle where one of its warps retired, so the scan is
        // skipped on all other cycles.
        if (warp_retired) {
          auto& pool = resident[sm];
          for (auto it = pool.begin(); it != pool.end();) {
            if ((*it)->finished()) {
              it = pool.erase(it);
              --resident_count;
            } else {
              ++it;
            }
          }
          admit(sm);
          next_valid = false;  // fresh warps are ready immediately
          if (pool.empty()) {
            // Drained for good (see the busy-list invariant above).
            busy.erase(busy.begin() + static_cast<std::ptrdiff_t>(bi));
            continue;
          }
        }
        sm_next[sm] = next_valid ? next_ready : 0;
        ++bi;
      }

      if (issued_any) {
        ++cycle;
      } else {
        // Fast-forward to the earliest moment any warp becomes ready. Every
        // SM was either scanned this cycle or carries a valid future
        // sm_next from its last scan, so the per-SM minima are current.
        u64 earliest = std::numeric_limits<u64>::max();
        for (const u32 sm : busy) {
          earliest = std::min(earliest, sm_next[sm]);
        }
        if (earliest == std::numeric_limits<u64>::max()) {
          // Every live warp is parked at a barrier with no one left to
          // arrive: a barrier deadlock (possible under control-flow
          // corruption).
          trap = Trap{};
          trap.kind = TrapKind::kBarrierDivergence;
          return RunExit::kTrapped;
        }
        cycle = std::max(earliest, cycle + 1);
      }
    }
    return RunExit::kCompleted;
  }
};

// ---------------------------------------------------------------------------
// Launch: path selection over the engine
// ---------------------------------------------------------------------------

Result<LaunchResult> Simulator::launch(const Program& program, Dim3 grid,
                                       Dim3 block, std::span<const u64> params,
                                       const LaunchOptions& options) {
  if (Status status = program.validate(); !status.is_ok()) return status;
  if (grid.count() == 0 || block.count() == 0) {
    return Status::invalid_argument("empty grid or block");
  }
  if (block.count() > 1024) {
    return Status::invalid_argument("block exceeds 1024 threads");
  }
  if (params.size() < program.num_params()) {
    return Status::invalid_argument(
        "kernel '" + program.name() + "' expects " +
        std::to_string(program.num_params()) + " params, got " +
        std::to_string(params.size()));
  }
  const u32 threads_per_cta = static_cast<u32>(block.count());
  const u32 occupancy = config_.ctas_per_sm(threads_per_cta, program.num_regs(),
                                            program.shared_bytes());
  if (occupancy == 0) {
    return Status::invalid_argument("CTA footprint exceeds one SM (" +
                                    program.name() + ")");
  }

  Engine engine(config_, memory_, program, grid, block, params, options);
  engine.threads_per_cta = threads_per_cta;
  engine.warps_per_cta = (threads_per_cta + kWarpSize - 1) / kWarpSize;
  engine.occupancy = occupancy;
  engine.watchdog =
      options.watchdog_instrs ? options.watchdog_instrs : kDefaultWatchdog;
  engine.total_ctas = grid.count();
  engine.resident.resize(config_.num_sms);

  LaunchScope scope(options.hooks, program);

  for (u32 sm = 0; sm < config_.num_sms; ++sm) engine.admit(sm);

  // Tier selection: hooks (or an explicit kInstrumented pin) take the
  // instrumented engine; hook-free execution — golden runs included — runs
  // the threaded tier unless pinned to clean. An instrumented run whose
  // hooks all finish observing resumes hook-free from the identical launch
  // state, landing on the same tier a hook-free launch would have used.
  // All tiers are bit-identical in every architecturally observable way.
  RunExit exit;
  EngineTier tier_used;
  bool downgraded = false;
  const bool pin_clean = options.engine == EngineTier::kClean;
  if (!options.hooks.empty() || options.engine == EngineTier::kInstrumented) {
    exit = engine.run<InstrumentedPolicy>();
    tier_used = EngineTier::kInstrumented;
    if (exit == RunExit::kDowngraded) {
      downgraded = true;
      exit = pin_clean ? engine.run<CleanPolicy>()
                       : engine.run<ThreadedPolicy>();
      tier_used = pin_clean ? EngineTier::kClean : EngineTier::kThreaded;
    }
  } else if (pin_clean) {
    exit = engine.run<CleanPolicy>();
    tier_used = EngineTier::kClean;
  } else {
    exit = engine.run<ThreadedPolicy>();
    tier_used = EngineTier::kThreaded;
  }
  (void)exit;

  LaunchResult result;
  result.trap = engine.trap;
  result.dyn_warp_instrs = engine.dyn_warp;
  result.dyn_thread_instrs = engine.dyn_thread;
  result.cycles = engine.cycle;
  result.ecc = memory_.counters();
  result.tier_used = tier_used;
  result.downgraded = downgraded;
  return result;
}

}  // namespace gfi::sim
