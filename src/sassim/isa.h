// SASS-like instruction set of the gpufi GPU simulator.
//
// The opcode inventory mirrors the instruction *groups* that SASSIFI/NVBitFI
// target on real NVIDIA GPUs (integer ALU, FP32/FP64 arithmetic, fused
// multiply-add, predicate-setting compares, loads/stores, atomics, warp
// shuffles/votes, barriers, control flow, and tensor-core MMA), so the fault
// injector can select sites by the same categories the papers report.
#pragma once

#include <string>

#include "common/types.h"

namespace gfi::sim {

// ---------------------------------------------------------------------------
// Register-file conventions
// ---------------------------------------------------------------------------

/// General-purpose registers are 32-bit; 64-bit values occupy an aligned
/// pair (Rn, Rn+1) exactly as in real SASS. RZ reads as zero and discards
/// writes.
inline constexpr u16 kRegZ = 255;
/// PT is the always-true predicate; P0..P6 are writable.
inline constexpr u8 kPredT = 7;
inline constexpr u8 kNumPredicates = 8;  // P0..P6 + PT
inline constexpr u32 kWarpSize = 32;

// ---------------------------------------------------------------------------
// Opcodes and their variants
// ---------------------------------------------------------------------------

enum class Opcode : u8 {
  kNop,
  kExit,  ///< retire lanes (guardable: partial-warp exit supported)
  kBra,   ///< guarded branch; divergence handled via the SSY/SYNC stack
  kSsy,   ///< push reconvergence point
  kSync,  ///< pop reconvergence/divergence stack entry
  kBar,   ///< CTA-wide barrier

  kMov,   ///< dst = src0 (reg/imm), dtype-width
  kSel,   ///< dst = src2(pred) ? src0 : src1
  kS2r,   ///< dst = special register (sub = SpecialReg)
  kLdc,   ///< dst = kernel parameter word (src0 = imm index)

  kIAdd,  ///< dst = src0 + src1 (U32/S32/U64)
  kIMul,  ///< dst = src0 * src1 (low 32 bits for 32-bit dtypes)
  kIMad,  ///< dst = src0 * src1 + src2; dtype U64 = IMAD.WIDE (32x32+64)
  kIMnmx, ///< dst = min/max(src0, src1); sub = MinMax
  kISetp, ///< pred dst = cmp(src0, src1); sub = CmpOp
  kLop,   ///< bitwise; sub = LopKind
  kShf,   ///< shift; sub = ShiftKind; src1 = amount
  kPopc,  ///< dst = popcount(src0)

  kFAdd,  ///< FP add (F32/F64; F64 uses register pairs)
  kFMul,
  kFFma,  ///< dst = src0 * src1 + src2 (fused)
  kFMnmx,
  kFSetp,
  kMufu,  ///< multi-function unit; sub = MufuKind (rcp/sqrt/rsq/exp2/...)
  kF2I,   ///< float -> signed int (truncating)
  kI2F,   ///< signed int -> float
  kF2F,   ///< F32 <-> F64 convert (dtype = destination type)

  kLdg,   ///< global load;  addr = src0(pair) + imm offset (src1)
  kStg,   ///< global store; data = src2
  kLds,   ///< shared load;  addr = src0(32-bit) + imm offset
  kSts,   ///< shared store
  kAtomG, ///< global atomic; sub = AtomKind; dst = old value
  kAtomS, ///< shared atomic

  kShfl,  ///< warp shuffle; sub = ShflKind; src1 = lane/delta operand
  kVote,  ///< warp vote; sub = VoteKind; src0 = source predicate

  kHmma,  ///< tensor-core m16n8k8 TF32 MMA over warp-distributed fragments
};

inline constexpr int kOpcodeCount = static_cast<int>(Opcode::kHmma) + 1;

/// Scalar type an instruction operates on. 64-bit types read/write register
/// pairs.
enum class DType : u8 { kU32, kS32, kU64, kF32, kF64 };

enum class LopKind : u8 { kAnd, kOr, kXor, kNot };
enum class ShiftKind : u8 { kLeft, kRightLogical, kRightArith };
enum class MinMax : u8 { kMin, kMax };
enum class CmpOp : u8 { kLt, kLe, kGt, kGe, kEq, kNe };
enum class MufuKind : u8 { kRcp, kSqrt, kRsq, kExp2, kLog2, kSin, kCos };
enum class AtomKind : u8 { kAdd, kMin, kMax, kExch, kCas };
enum class ShflKind : u8 { kIdx, kUp, kDown, kBfly };
enum class VoteKind : u8 { kAll, kAny, kBallot };

/// Special (read-only) per-thread registers, read via S2R.
enum class SpecialReg : u8 {
  kTidX, kTidY, kTidZ,
  kCtaidX, kCtaidY, kCtaidZ,
  kNtidX, kNtidY, kNtidZ,
  kNctaidX, kNctaidY, kNctaidZ,
  kLaneId,
  kWarpId,
};

// ---------------------------------------------------------------------------
// Operands
// ---------------------------------------------------------------------------

enum class OperandKind : u8 { kNone, kReg, kImm, kPred };

/// One instruction operand. Immediates store raw bit patterns; float
/// immediates are bit-cast in (imm_f32 / imm_f64 factories).
struct Operand {
  OperandKind kind = OperandKind::kNone;
  u16 index = 0;        ///< register or predicate index
  u64 imm = 0;          ///< immediate payload (bit pattern)
  bool negated = false; ///< predicate negation (kPred only)

  static Operand none() { return {}; }
  static Operand reg(u16 r) { return {OperandKind::kReg, r, 0, false}; }
  static Operand imm_u(u64 v) { return {OperandKind::kImm, 0, v, false}; }
  static Operand imm_s(i64 v) {
    return {OperandKind::kImm, 0, static_cast<u64>(v), false};
  }
  static Operand imm_f32(f32 v);
  static Operand imm_f64(f64 v);
  static Operand pred(u16 p, bool neg = false) {
    return {OperandKind::kPred, p, 0, neg};
  }

  [[nodiscard]] bool is_reg() const { return kind == OperandKind::kReg; }
  [[nodiscard]] bool is_imm() const { return kind == OperandKind::kImm; }
  [[nodiscard]] bool is_pred() const { return kind == OperandKind::kPred; }
  [[nodiscard]] bool is_none() const { return kind == OperandKind::kNone; }
};

// ---------------------------------------------------------------------------
// Instruction
// ---------------------------------------------------------------------------

/// One static instruction. `target` holds a resolved instruction index for
/// control flow (kBra/kSsy); before linking, `label` names the destination.
struct Instr {
  Opcode op = Opcode::kNop;
  DType dtype = DType::kU32;
  u8 sub = 0;  ///< variant selector; meaning depends on op (see enums above)

  Operand dst;
  Operand src[3];

  u8 guard_pred = kPredT;     ///< @P guard; kPredT = unconditional
  bool guard_negated = false; ///< @!P

  i32 target = -1;       ///< resolved branch/SSY destination
  std::string label;     ///< unresolved destination (cleared by linking)
  u8 mem_width = 4;      ///< LD/ST access width in bytes (1, 2, 4, 8)

  [[nodiscard]] bool is_control() const {
    return op == Opcode::kBra || op == Opcode::kSsy || op == Opcode::kSync ||
           op == Opcode::kExit || op == Opcode::kBar;
  }
  [[nodiscard]] bool is_memory() const {
    return op == Opcode::kLdg || op == Opcode::kStg || op == Opcode::kLds ||
           op == Opcode::kSts || op == Opcode::kAtomG || op == Opcode::kAtomS;
  }
  [[nodiscard]] bool is_store() const {
    return op == Opcode::kStg || op == Opcode::kSts;
  }
  /// True when the destination is a general-purpose register write.
  [[nodiscard]] bool writes_reg() const;
  /// True when the destination is a predicate write.
  [[nodiscard]] bool writes_pred() const {
    return op == Opcode::kISetp || op == Opcode::kFSetp ||
           (op == Opcode::kVote && sub != static_cast<u8>(VoteKind::kBallot));
  }
  /// Number of 32-bit registers the destination spans (1 or 2).
  [[nodiscard]] u16 dst_reg_span() const;
};

// ---------------------------------------------------------------------------
// Instruction groups (SASSIFI/NVBitFI reporting categories)
// ---------------------------------------------------------------------------

/// Category an instruction is reported/injected under. These are the row
/// labels of the per-group vulnerability tables.
enum class InstrGroup : u8 {
  kInt,       ///< IADD/IMUL/IMNMX/LOP/SHF/POPC/MOV/SEL/S2R/LDC
  kIntMad,    ///< IMAD (integer multiply-add, incl. address math)
  kFp32,      ///< FADD/FMUL/FMNMX/MUFU/F2I/I2F/F2F on F32
  kFp32Fma,   ///< FFMA F32
  kFp64,      ///< F64 arithmetic
  kSetp,      ///< ISETP/FSETP (predicate writers)
  kLoad,      ///< LDG/LDS
  kStore,     ///< STG/STS
  kAtomic,    ///< ATOMG/ATOMS
  kWarpComm,  ///< SHFL/VOTE
  kMma,       ///< HMMA tensor-core
  kControl,   ///< BRA/SSY/SYNC/BAR/EXIT/NOP
};

inline constexpr int kInstrGroupCount = static_cast<int>(InstrGroup::kControl) + 1;

/// Group of a (static) instruction.
InstrGroup instr_group(const Instr& instr);

const char* opcode_name(Opcode op);
const char* dtype_name(DType dtype);
const char* group_name(InstrGroup group);

/// Disassembles one instruction to a readable SASS-like line.
std::string to_string(const Instr& instr);

}  // namespace gfi::sim
