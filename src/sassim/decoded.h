// Predecoded program representation: the simulator's per-kernel "decode
// pass", run once per Program and cached (Program::decoded()).
//
// The executor's inner loop used to re-derive everything per dynamic warp
// instruction: instr_group() lookups, guard-mask eligibility, operand-kind
// switches over `Operand`s sitting in an `Instr` array whose std::string
// label member wrecks cache density. DecodedInstr is the dense, label-free
// answer: every field the execution core, the profiler, the tracer, the
// static-analysis passes (src/sa), and the linter need, resolved once.
//
// A DecodedProgram is immutable after construction and shared read-only
// across any number of concurrent launches — exactly like the Program it
// mirrors (injection campaigns launch the same kernel from many host
// threads at once).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "sassim/defuse.h"
#include "sassim/isa.h"

namespace gfi::sim {

/// One resolved operand: the payload of `Operand` without any need to
/// consult the opcode again. kNone reads as 0, matching the executor.
struct DecodedOperand {
  u64 imm = 0;            ///< immediate payload (bit pattern)
  OperandKind kind = OperandKind::kNone;
  u16 index = 0;          ///< register or predicate index
  bool negated = false;   ///< predicate negation (kPred only)

  [[nodiscard]] bool is_imm() const { return kind == OperandKind::kImm; }
};

/// One predecoded instruction: the hot subset of `Instr` plus everything
/// that used to be recomputed per dynamic instance. Plain data, no strings.
struct DecodedInstr {
  DecodedOperand src[3];
  u32 target = 0;          ///< resolved branch/SSY destination
  Opcode op = Opcode::kNop;
  DType dtype = DType::kU32;
  u8 sub = 0;
  u8 mem_width = 4;
  InstrGroup group = InstrGroup::kControl;  ///< instr_group(), precomputed
  u8 guard_pred = kPredT;
  bool guard_negated = false;
  /// True when the guard can mask lanes off (anything but plain @PT). An
  /// unguarded instruction's exec mask is exactly the warp's active mask,
  /// so the clean path skips the per-lane guard scan entirely.
  bool guarded = false;
  bool wide = false;       ///< dtype spans a register pair (U64/F64)
  /// No source is a predicate: every consulted operand is a register,
  /// an immediate, or absent. Precondition of the executor's full-warp
  /// vector ALU fast path (operand fetch becomes a row load/broadcast).
  bool vec_srcs = false;
  OperandKind dst_kind = OperandKind::kNone;
  u16 dst_index = 0;
};

/// The decode pass over a linked program: a dense DecodedInstr per pc plus
/// the def/use footprint table (sim::def_use) the dataflow passes, the
/// linter, and dead-site pruning all consume. Built once per kernel via
/// Program::decoded(); ~O(code size), trivially cheap next to any launch.
class DecodedProgram {
 public:
  explicit DecodedProgram(std::span<const Instr> code);

  [[nodiscard]] std::size_t size() const { return instrs_.size(); }
  [[nodiscard]] const DecodedInstr& at(std::size_t pc) const {
    return instrs_[pc];
  }
  /// Cached sim::def_use(code[pc]) — the executor-mirroring footprint.
  [[nodiscard]] const DefUse& def_use(std::size_t pc) const {
    return defuse_[pc];
  }
  [[nodiscard]] InstrGroup group(std::size_t pc) const {
    return instrs_[pc].group;
  }
  /// is_guarded(code[pc]): writes must not count as liveness kills.
  [[nodiscard]] bool guarded(std::size_t pc) const {
    return instrs_[pc].guarded;
  }

 private:
  std::vector<DecodedInstr> instrs_;
  std::vector<DefUse> defuse_;
};

}  // namespace gfi::sim
