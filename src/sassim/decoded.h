// Predecoded program representation: the simulator's per-kernel "decode
// pass", run once per Program and cached (Program::decoded()).
//
// The executor's inner loop used to re-derive everything per dynamic warp
// instruction: instr_group() lookups, guard-mask eligibility, operand-kind
// switches over `Operand`s sitting in an `Instr` array whose std::string
// label member wrecks cache density. DecodedInstr is the dense, label-free
// answer: every field the execution core, the profiler, the tracer, the
// static-analysis passes (src/sa), and the linter need, resolved once.
//
// A DecodedProgram is immutable after construction and shared read-only
// across any number of concurrent launches — exactly like the Program it
// mirrors (injection campaigns launch the same kernel from many host
// threads at once).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"
#include "sassim/defuse.h"
#include "sassim/isa.h"

namespace gfi::sim {

/// Direct handler id for the threaded dispatch tier (exec_threaded.h).
/// Assigned once per pc by DecodedProgram's lowering pass, so the hook-free
/// interpreter jumps straight to a specialized handler instead of switching
/// on the opcode and then re-validating vector-path eligibility per dynamic
/// instruction. kGeneric delegates to the templated clean dispatcher and is
/// always a correct (if slower) assignment; every other id encodes a
/// decode-time proof (operand kinds, dtype, width) that the corresponding
/// fast path applies whenever the runtime mask/fault preconditions hold.
enum class Handler : u8 {
  kGeneric,       ///< no specialization: clean dispatch switch

  // Control flow (bodies mirror the clean dispatcher's cases exactly).
  kExit,
  kBra,
  kSync,
  kBar,

  // Full-warp vector ALU ops, decode-proven eligible for the exec_vec row
  // kernels (vec_srcs, dtype/width restrictions). Runtime check: full mask.
  kMov,
  kSel,
  kIAdd,
  kIMul,
  kIMad32,        ///< 32-bit multiply-add
  kIMadWide,      ///< IMAD.WIDE (u32*u32+u64 -> pair); address idiom
  kIMnmx,
  kISetp,
  kLop,
  kShf,
  kPopc,
  kFArith,        ///< f32 FADD/FMUL/FMNMX
  kFFma,
  kFSetp,
  kI2F,

  // Row-wise memory ops (width-4, register base/data), decode-proven for
  // the exec_vec row kernels. Runtime check: full mask (+ fault-free map
  // for global memory).
  kLdgRow,
  kStgRow,
  kLdsRow,
  kStsRow,

  // Superinstruction fusion. Heads keep their own scheduler slot (cycles,
  // issue budget, and per-instruction accounting are untouched) but
  // precompute the tail's work into a per-warp stash; tails consume the
  // stash when valid and fall back to their unfused behavior otherwise
  // (branch into the tail, downgrade resume, partial mask at the head).
  kCmpBraHead,    ///< vec ISETP whose dst pred guards the next BRA
  kBraFusedTail,  ///< BRA consuming the stashed taken-mask
  kAddrLdgHead,   ///< IMAD.WIDE feeding the next LDG's address pair
  kLdgFusedTail,  ///< LDG with head-proven alignment + bounds
  kAddrStgHead,   ///< IMAD.WIDE feeding the next STG's address pair
  kStgFusedTail,  ///< STG with head-proven alignment + bounds
  kFFmaChainHead, ///< f32 FFMA pair executed in one handler
  kFFmaChainTail, ///< second FFMA of a fused chain (skips when stashed)
};

inline constexpr int kHandlerCount =
    static_cast<int>(Handler::kFFmaChainTail) + 1;

/// One resolved operand: the payload of `Operand` without any need to
/// consult the opcode again. kNone reads as 0, matching the executor.
struct DecodedOperand {
  u64 imm = 0;            ///< immediate payload (bit pattern)
  OperandKind kind = OperandKind::kNone;
  u16 index = 0;          ///< register or predicate index
  bool negated = false;   ///< predicate negation (kPred only)

  [[nodiscard]] bool is_imm() const { return kind == OperandKind::kImm; }
};

/// One predecoded instruction: the hot subset of `Instr` plus everything
/// that used to be recomputed per dynamic instance. Plain data, no strings.
struct DecodedInstr {
  DecodedOperand src[3];
  u32 target = 0;          ///< resolved branch/SSY destination
  Opcode op = Opcode::kNop;
  DType dtype = DType::kU32;
  u8 sub = 0;
  u8 mem_width = 4;
  InstrGroup group = InstrGroup::kControl;  ///< instr_group(), precomputed
  u8 guard_pred = kPredT;
  bool guard_negated = false;
  /// True when the guard can mask lanes off (anything but plain @PT). An
  /// unguarded instruction's exec mask is exactly the warp's active mask,
  /// so the clean path skips the per-lane guard scan entirely.
  bool guarded = false;
  bool wide = false;       ///< dtype spans a register pair (U64/F64)
  /// No source is a predicate: every consulted operand is a register,
  /// an immediate, or absent. Precondition of the executor's full-warp
  /// vector ALU fast path (operand fetch becomes a row load/broadcast).
  bool vec_srcs = false;
  OperandKind dst_kind = OperandKind::kNone;
  u16 dst_index = 0;
  /// Threaded-tier direct dispatch target; see Handler. Lowered in a second
  /// pass over the decoded stream (fusion inspects pc+1). The templated
  /// clean/instrumented paths never read this field.
  Handler handler = Handler::kGeneric;
};

/// The decode pass over a linked program: a dense DecodedInstr per pc plus
/// the def/use footprint table (sim::def_use) the dataflow passes, the
/// linter, and dead-site pruning all consume. Built once per kernel via
/// Program::decoded(); ~O(code size), trivially cheap next to any launch.
class DecodedProgram {
 public:
  explicit DecodedProgram(std::span<const Instr> code);

  [[nodiscard]] std::size_t size() const { return instrs_.size(); }
  [[nodiscard]] const DecodedInstr& at(std::size_t pc) const {
    return instrs_[pc];
  }
  /// Cached sim::def_use(code[pc]) — the executor-mirroring footprint.
  [[nodiscard]] const DefUse& def_use(std::size_t pc) const {
    return defuse_[pc];
  }
  [[nodiscard]] InstrGroup group(std::size_t pc) const {
    return instrs_[pc].group;
  }
  /// is_guarded(code[pc]): writes must not count as liveness kills.
  [[nodiscard]] bool guarded(std::size_t pc) const {
    return instrs_[pc].guarded;
  }

 private:
  std::vector<DecodedInstr> instrs_;
  std::vector<DefUse> defuse_;
};

}  // namespace gfi::sim
