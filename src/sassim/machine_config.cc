#include "sassim/machine_config.h"

#include <algorithm>

namespace gfi::sim {

LatencyTable default_latencies() {
  LatencyTable table;
  table.cycles.fill(4);  // simple ALU default
  table.set(Opcode::kNop, 1);
  table.set(Opcode::kExit, 1);
  table.set(Opcode::kBra, 2);
  table.set(Opcode::kSsy, 1);
  table.set(Opcode::kSync, 2);
  table.set(Opcode::kBar, 2);
  table.set(Opcode::kIMad, 5);
  table.set(Opcode::kIMul, 5);
  table.set(Opcode::kFFma, 4);
  table.set(Opcode::kMufu, 16);
  table.set(Opcode::kLdg, 40);   // overridden per-arch via mem_latency_cycles
  table.set(Opcode::kStg, 10);
  table.set(Opcode::kLds, 8);
  table.set(Opcode::kSts, 4);
  table.set(Opcode::kAtomG, 60);
  table.set(Opcode::kAtomS, 12);
  table.set(Opcode::kShfl, 6);
  table.set(Opcode::kVote, 2);
  table.set(Opcode::kHmma, 8);
  return table;
}

u32 MachineConfig::ctas_per_sm(u32 threads_per_cta, u16 regs_per_thread,
                               u32 shared_bytes_per_cta) const {
  if (threads_per_cta == 0) return 0;
  const u32 warps_per_cta = (threads_per_cta + kWarpSize - 1) / kWarpSize;
  u32 limit = max_ctas_per_sm;
  limit = std::min(limit, max_warps_per_sm / std::max(1u, warps_per_cta));
  const u32 regs_per_cta =
      std::max<u32>(1, threads_per_cta * std::max<u16>(regs_per_thread, 1));
  limit = std::min(limit, regfile_words_per_sm / regs_per_cta);
  if (shared_bytes_per_cta > 0) {
    limit = std::min(limit, shared_bytes_per_sm / shared_bytes_per_cta);
  }
  return limit;
}

}  // namespace gfi::sim
