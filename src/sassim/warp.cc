#include "sassim/warp.h"

namespace gfi::sim {

void WarpState::retire_lanes(u32 lanes) {
  exited_ |= lanes;
  active_ &= ~lanes;
  for (auto& entry : stack_) entry.mask &= ~lanes;

  // If the current context emptied, resume the next pending one.
  while (active_ == 0 && !stack_.empty()) {
    const StackEntry entry = stack_.back();
    stack_.pop_back();
    if (entry.mask == 0) continue;
    active_ = entry.mask;
    pc = entry.pc;
    break;
  }
}

}  // namespace gfi::sim
