#include "sassim/defuse.h"

namespace gfi::sim {
namespace {

bool wide(DType dtype) { return dtype == DType::kU64 || dtype == DType::kF64; }

/// A source read through Engine::read_operand: registers read at the given
/// dtype width, predicate operands read as 0/1.
void use_operand(DefUse& du, const Operand& operand, DType dtype) {
  switch (operand.kind) {
    case OperandKind::kReg:
      du.src_regs.add_span(operand.index, wide(dtype) ? 2 : 1);
      break;
    case OperandKind::kPred:
      if (operand.index != kPredT) {
        du.src_preds |= static_cast<u8>(1u << operand.index);
      }
      break;
    case OperandKind::kImm:
    case OperandKind::kNone:
      break;
  }
}

/// A source the executor reads via warp.reg()/reg64() with the operand's
/// index directly (store data, shuffle source, MMA fragments).
void use_reg_direct(DefUse& du, const Operand& operand, u16 span) {
  if (operand.is_reg()) du.src_regs.add_span(operand.index, span);
}

/// A destination written through Engine::write_dst (width follows dtype).
void def_dst(DefUse& du, const Instr& instr, u16 span) {
  if (instr.dst.is_reg()) du.dst_regs.add_span(instr.dst.index, span);
}

}  // namespace

DefUse def_use(const Instr& instr) {
  DefUse du;
  // The guard predicate is evaluated per lane for every instruction.
  if (instr.guard_pred != kPredT) {
    du.src_preds |= static_cast<u8>(1u << instr.guard_pred);
  }
  const u16 dst_w = wide(instr.dtype) ? 2 : 1;

  switch (instr.op) {
    case Opcode::kNop:
    case Opcode::kExit:
    case Opcode::kBra:
    case Opcode::kSsy:
    case Opcode::kSync:
    case Opcode::kBar:
      break;

    case Opcode::kMov:
      use_operand(du, instr.src[0], instr.dtype);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kSel:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], instr.dtype);
      use_operand(du, instr.src[2], DType::kU32);  // selector: pred or reg
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kS2r:
      def_dst(du, instr, 1);
      break;

    case Opcode::kLdc:
      def_dst(du, instr, dst_w);  // src0 is an immediate parameter index
      break;

    case Opcode::kIAdd:
    case Opcode::kIMul:
    case Opcode::kIMnmx:
    case Opcode::kLop:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], instr.dtype);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kIMad:
      if (instr.dtype == DType::kU64) {
        // IMAD.WIDE: 32-bit factors, 64-bit accumulator.
        use_operand(du, instr.src[0], DType::kU32);
        use_operand(du, instr.src[1], DType::kU32);
        use_operand(du, instr.src[2], DType::kU64);
      } else {
        use_operand(du, instr.src[0], instr.dtype);
        use_operand(du, instr.src[1], instr.dtype);
        use_operand(du, instr.src[2], instr.dtype);
      }
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kISetp:
    case Opcode::kFSetp:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], instr.dtype);
      break;  // predicate destination handled below

    case Opcode::kShf:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], DType::kU32);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kPopc:
      use_operand(du, instr.src[0], instr.dtype);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFMnmx:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], instr.dtype);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kFFma:
      use_operand(du, instr.src[0], instr.dtype);
      use_operand(du, instr.src[1], instr.dtype);
      use_operand(du, instr.src[2], instr.dtype);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kMufu:
      use_operand(du, instr.src[0], DType::kF32);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kF2I:
      use_operand(du, instr.src[0], instr.dtype);
      def_dst(du, instr, 1);  // executor writes via set_reg regardless of dtype
      break;

    case Opcode::kI2F:
      use_operand(du, instr.src[0], DType::kS32);
      def_dst(du, instr, dst_w);
      break;

    case Opcode::kF2F:
      // dtype names the destination: F64 widens from F32, F32 narrows.
      if (instr.dtype == DType::kF64) {
        use_operand(du, instr.src[0], DType::kF32);
        def_dst(du, instr, 2);
      } else {
        use_operand(du, instr.src[0], DType::kF64);
        def_dst(du, instr, 1);
      }
      break;

    case Opcode::kLdg:
      use_operand(du, instr.src[0], DType::kU64);  // address pair
      def_dst(du, instr, instr.mem_width == 8 ? 2 : 1);
      break;

    case Opcode::kStg:
      use_operand(du, instr.src[0], DType::kU64);
      use_reg_direct(du, instr.src[2], instr.mem_width == 8 ? 2 : 1);
      break;

    case Opcode::kLds:
      use_operand(du, instr.src[0], DType::kU32);
      def_dst(du, instr, instr.mem_width == 8 ? 2 : 1);
      break;

    case Opcode::kSts:
      use_operand(du, instr.src[0], DType::kU32);
      use_reg_direct(du, instr.src[2], instr.mem_width == 8 ? 2 : 1);
      break;

    case Opcode::kAtomG:
    case Opcode::kAtomS:
      use_operand(du, instr.src[0],
                  instr.op == Opcode::kAtomG ? DType::kU64 : DType::kU32);
      use_operand(du, instr.src[1], instr.dtype);
      if (static_cast<AtomKind>(instr.sub) == AtomKind::kCas) {
        use_operand(du, instr.src[2], instr.dtype);
      }
      def_dst(du, instr, 1);  // old value, only when dst is a real register
      break;

    case Opcode::kShfl:
      use_reg_direct(du, instr.src[0], 1);  // gathered across all lanes
      use_operand(du, instr.src[1], DType::kU32);
      def_dst(du, instr, 1);
      break;

    case Opcode::kVote:
      use_operand(du, instr.src[0], DType::kU32);  // usually a predicate
      if (static_cast<VoteKind>(instr.sub) == VoteKind::kBallot) {
        def_dst(du, instr, 1);
      }
      break;

    case Opcode::kHmma:
      use_reg_direct(du, instr.src[0], 4);  // A fragment
      use_reg_direct(du, instr.src[1], 2);  // B fragment
      use_reg_direct(du, instr.src[2], 4);  // C fragment
      def_dst(du, instr, 4);
      break;
  }

  if (instr.writes_pred() && instr.dst.is_pred() && instr.dst.index < kPredT) {
    du.dst_preds |= static_cast<u8>(1u << instr.dst.index);
  }
  // Injector footprint: strike_iov corrupts the full dst_reg_span() of any
  // register-writing instruction (and HMMA), whether or not the executor
  // wrote every register in it.
  if (!instr.writes_pred() &&
      (instr.writes_reg() || instr.op == Opcode::kHmma) && instr.dst.is_reg() &&
      instr.dst.index != kRegZ) {
    du.strike_regs.add_span(instr.dst.index, instr.dst_reg_span());
  }
  return du;
}

BitSemantics bit_semantics(Opcode op) {
  // No default: adding an opcode without classifying it here is a compile
  // warning (-Wswitch), and the completeness-guard test audits the table.
  switch (op) {
    case Opcode::kNop:
    case Opcode::kExit:
    case Opcode::kBra:
    case Opcode::kSsy:
    case Opcode::kSync:
    case Opcode::kBar:
    case Opcode::kS2r:
    case Opcode::kLdc:
      return BitSemantics::kNone;
    case Opcode::kMov:
    case Opcode::kSel:
      return BitSemantics::kPassThrough;
    case Opcode::kLop:
      return BitSemantics::kBitwise;
    case Opcode::kShf:
      return BitSemantics::kShift;
    case Opcode::kIAdd:
    case Opcode::kIMul:
    case Opcode::kIMad:  // carry accumulator; factors punt to full demand
      return BitSemantics::kCarry;
    case Opcode::kISetp:
    case Opcode::kFSetp:
      return BitSemantics::kCompare;
    case Opcode::kIMnmx:
    case Opcode::kPopc:
    case Opcode::kFAdd:
    case Opcode::kFMul:
    case Opcode::kFFma:
    case Opcode::kFMnmx:
    case Opcode::kMufu:
    case Opcode::kF2I:
    case Opcode::kI2F:
    case Opcode::kF2F:
      return BitSemantics::kAllOrNothing;
    case Opcode::kLdg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts:
    case Opcode::kAtomG:
    case Opcode::kAtomS:
      return BitSemantics::kMemory;
    case Opcode::kShfl:
    case Opcode::kVote:
    case Opcode::kHmma:
      return BitSemantics::kCrossLane;
  }
  return BitSemantics::kAllOrNothing;  // unreachable
}

}  // namespace gfi::sim
