// Hardware trap descriptors. Traps are the simulator's DUE mechanism:
// a trapped launch aborts and surfaces the trap in LaunchResult, exactly
// like an XID/CUDA error surfacing a detected-unrecoverable fault.
#pragma once

#include <string>

#include "common/types.h"

namespace gfi::sim {

enum class TrapKind : u8 {
  kNone = 0,
  kIllegalGlobalAddress,  ///< global access outside the allocated arena
  kMisalignedAddress,     ///< access not aligned to its width
  kIllegalSharedAddress,  ///< shared access outside the CTA allocation
  kEccDoubleBit,          ///< SECDED detected an uncorrectable (>=2-bit) error
  kWatchdogTimeout,       ///< dynamic-instruction budget exhausted (hang)
  kIllegalInstruction,    ///< malformed dynamic state (e.g. HMMA partial warp)
  kBarrierDivergence,     ///< BAR reached with threads of the CTA exited
};

const char* trap_kind_name(TrapKind kind);

/// A trap plus where it fired. kind == kNone means "no trap".
struct Trap {
  TrapKind kind = TrapKind::kNone;
  u64 address = 0;  ///< faulting address if address-related
  u64 pc = 0;       ///< static instruction index
  u32 cta = 0;      ///< linear CTA id
  u32 warp = 0;     ///< warp index within the CTA

  [[nodiscard]] bool fired() const { return kind != TrapKind::kNone; }
  [[nodiscard]] std::string to_string() const;
};

}  // namespace gfi::sim
