#include "sassim/tracer.h"

#include <sstream>

namespace gfi::sim {

std::string TraceEntry::to_string() const {
  std::ostringstream out;
  out << "#" << dyn_index << " cta" << cta << "/w" << warp << " pc=" << pc
      << " " << opcode_name(op) << " [" << group_name(group) << "] mask=0x"
      << std::hex << exec_mask;
  return out.str();
}

TracerHook::Filter TracerHook::only_warp(u32 cta, u32 warp) {
  return [cta, warp](const TraceEntry& entry) {
    return entry.cta == cta && entry.warp == warp;
  };
}

TracerHook::Filter TracerHook::only_group(InstrGroup group) {
  return [group](const TraceEntry& entry) { return entry.group == group; };
}

TracerHook::Filter TracerHook::window(u64 first_dyn, u64 last_dyn) {
  return [first_dyn, last_dyn](const TraceEntry& entry) {
    return entry.dyn_index >= first_dyn && entry.dyn_index <= last_dyn;
  };
}

void TracerHook::on_before_instr(InstrContext& ctx) {
  ++seen_;
  TraceEntry entry;
  entry.dyn_index = ctx.dyn_index;
  entry.cta = ctx.cta;
  entry.warp = ctx.warp;
  entry.pc = ctx.warp_state ? ctx.warp_state->pc : 0;
  entry.op = ctx.instr->op;
  entry.group = ctx.group;
  entry.exec_mask = ctx.exec_mask;
  if (filter_ && !filter_(entry)) return;
  if (entries_.size() >= max_entries_) {
    truncated_ = true;
    return;
  }
  entries_.push_back(entry);
}

void TracerHook::clear() {
  entries_.clear();
  seen_ = 0;
  truncated_ = false;
}

std::string TracerHook::to_string() const {
  std::ostringstream out;
  for (const TraceEntry& entry : entries_) out << entry.to_string() << "\n";
  if (truncated_) out << "... (truncated)\n";
  return out.str();
}

}  // namespace gfi::sim
