// Threaded-code dispatch tier: the hook-free interpreter over the handler
// ids DecodedProgram's lowering pass assigned per pc.
//
// The templated clean path (simulator.cc) pays two switches per dynamic
// instruction: the opcode switch in Engine::dispatch and, for vector-
// eligible ALU ops, a second opcode switch inside exec::vec_alu — plus the
// per-op eligibility re-checks both perform. This tier jumps straight from
// the predecoded handler id to a specialized handler that already knows the
// op shape (decode-proven dtype/width/operand kinds) and only validates the
// runtime half of each precondition (full active mask, empty fault map).
// Handlers reuse the exec_vec.h SIMD row kernels, so lane arithmetic is the
// same expression-identical code the clean tier runs: results, traps,
// cycles, and dynamic-instruction counts are bit-identical across tiers
// (tests/test_exec_paths.cc asserts it per workload; CI diffs campaign
// journals byte-for-byte).
//
// Dispatch backend: GCC/Clang labels-as-values (`&&label` computed goto)
// when available, a portable switch otherwise — selected by the GFI_DISPATCH
// CMake option. Both backends share the same single-sourced handler bodies,
// so they cannot diverge observably; only the indirect-jump mechanics
// differ.
//
// Superinstruction fusion: a fusion head executes in its own scheduler slot
// (issue budget, cycle accounting, watchdog granularity, and profile counts
// are untouched) and additionally precomputes its tail's work into the
// warp's fuse_pc/fuse_mask stash. The tail still occupies its own slot but
// reduces to a stash check when the head just ran; with the stash invalid
// (branch into the tail, resume after a mid-launch downgrade, partial mask
// at the head) it falls back to its unfused handler. Nothing can touch a
// warp's state between its own two consecutive slots on the hook-free path,
// so a matching stash is never stale.
//
// Everything here is duck-typed over the engine type (templates over
// EngineT/CtaT): Simulator::Engine and Simulator::Cta are private nested
// types of Simulator, reachable only by deduction. The engine provides
// mem/dec/opts, dyn_warp/dyn_thread, count_profile(), fire(), and the
// dispatch_clean() wrapper the generic fallback delegates to.
#pragma once

#include <bit>

#include "common/types.h"
#include "sassim/decoded.h"
#include "sassim/exec_vec.h"
#include "sassim/trap.h"
#include "sassim/warp.h"

// Backend selection. CMake (GFI_DISPATCH) defines exactly one of
// GFI_DISPATCH_GOTO / GFI_DISPATCH_SWITCH; a bare compile picks computed
// goto when the compiler has labels-as-values.
#if !defined(GFI_DISPATCH_GOTO) && !defined(GFI_DISPATCH_SWITCH)
#if defined(__GNUC__) || defined(__clang__)
#define GFI_DISPATCH_GOTO 1
#else
#define GFI_DISPATCH_SWITCH 1
#endif
#endif

namespace gfi::sim::exec {

/// Compiled dispatch backend, for `gpufi version` / `gpufi status` and the
/// bench metadata (mirrors simd::backend()).
[[nodiscard]] constexpr const char* dispatch_backend() {
#if defined(GFI_DISPATCH_GOTO)
  return "goto";
#else
  return "switch";
#endif
}

namespace thr {

inline constexpr u32 kFullMask = 0xffffffffu;

/// The clean tier's exec-mask computation, verbatim: one guard scan for
/// guarded instructions, the active mask outright for @PT.
[[gnu::always_inline]] inline u32 exec_mask(const WarpState& warp,
                                            const DecodedInstr& instr) {
  return instr.guarded
             ? warp.guard_mask_fast(instr.guard_pred, instr.guard_negated)
             : warp.active();
}

/// Per-slot accounting, identical to the clean tier's exec_instr preamble.
/// Every handler runs this exactly once before touching state, so dynamic
/// counts and native profiles cannot drift across tiers — fused or not.
template <typename EngineT>
[[gnu::always_inline]] inline void account(EngineT& eng,
                                           const DecodedInstr& instr,
                                           u32 exec) {
  ++eng.dyn_warp;
  eng.dyn_thread += static_cast<u64>(std::popcount(exec));
  if (eng.opts.profile) eng.count_profile(instr, exec);
}

/// Shared ALU handler shape: full-mask rows run the decode-proven exec_vec
/// kernel; anything else (guard-masked lanes) delegates to the generic
/// clean dispatcher, which recomputes nothing observable.
template <typename EngineT, typename CtaT, typename RowKernel>
[[gnu::always_inline]] inline TrapKind alu(EngineT& eng, CtaT& cta,
                                           WarpState& warp,
                                           const DecodedInstr& instr,
                                           RowKernel&& kernel) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  if (exec == kFullMask) {
    kernel(warp, instr);
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

/// BRA body, mirroring the clean dispatcher's case exactly.
[[gnu::always_inline]] inline TrapKind bra_body(WarpState& warp,
                                                const DecodedInstr& instr,
                                                u32 exec) {
  const u32 taken = exec;
  const u32 not_taken = warp.active() & ~exec;
  if (taken == 0) {
    ++warp.pc;
  } else if (not_taken == 0) {
    warp.pc = instr.target;
  } else {
    warp.stack().push_back({taken, instr.target, StackEntry::Kind::kDiv});
    warp.set_active(not_taken);
    ++warp.pc;
  }
  return TrapKind::kNone;
}

/// LDG row-or-generic body shared by the plain row handler and the fused
/// tail's fallback. `exec` is already accounted.
template <typename EngineT, typename CtaT>
[[gnu::always_inline]] inline TrapKind ldg_row_or_generic(
    EngineT& eng, CtaT& cta, WarpState& warp, const DecodedInstr& instr,
    u32 exec) {
  if (exec == kFullMask && eng.mem.fault_free() &&
      ldg_row(warp, instr, eng.mem).state == RowMem::kDone) {
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
[[gnu::always_inline]] inline TrapKind stg_row_or_generic(
    EngineT& eng, CtaT& cta, WarpState& warp, const DecodedInstr& instr,
    u32 exec) {
  if (exec == kFullMask && eng.mem.fault_free() &&
      stg_row(warp, instr, eng.mem).state == RowMem::kDone) {
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

// ---- handlers --------------------------------------------------------------

template <typename EngineT, typename CtaT>
inline TrapKind h_generic(EngineT& eng, CtaT& cta, WarpState& warp,
                          const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  return eng.dispatch_clean(cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_exit(EngineT& eng, [[maybe_unused]] CtaT& cta,
                       WarpState& warp, const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  const u32 rest = warp.active() & ~exec;
  warp.retire_lanes(exec);
  if (rest != 0) ++warp.pc;
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_bra(EngineT& eng, [[maybe_unused]] CtaT& cta,
                      WarpState& warp, const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  return bra_body(warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_sync(EngineT& eng, CtaT& cta, WarpState& warp,
                       const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  if (warp.stack().empty()) {
    return eng.fire(TrapKind::kIllegalInstruction, cta, warp);
  }
  const StackEntry entry = warp.stack().back();
  warp.stack().pop_back();
  if (entry.kind == StackEntry::Kind::kDiv && entry.mask != 0) {
    warp.set_active(entry.mask);
    warp.pc = entry.pc;
  } else if (entry.kind == StackEntry::Kind::kSsy) {
    warp.set_active(entry.mask);
    ++warp.pc;
  } else {
    ++warp.pc;  // emptied divergence entry: fall through
  }
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_bar(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  warp.at_barrier = true;
  ++warp.pc;
  // Release when every warp that can still arrive has arrived.
  bool all_arrived = true;
  for (const auto& other : cta.warps) {
    if (!other.done() && !other.at_barrier) {
      all_arrived = false;
      break;
    }
  }
  if (all_arrived) {
    for (auto& other : cta.warps) other.at_barrier = false;
  }
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_mov(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_mov(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_sel(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_sel(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_iadd(EngineT& eng, CtaT& cta, WarpState& warp,
                       const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_iadd(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_imul(EngineT& eng, CtaT& cta, WarpState& warp,
                       const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_imul(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_imad32(EngineT& eng, CtaT& cta, WarpState& warp,
                         const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_imad32(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_imad_wide(EngineT& eng, CtaT& cta, WarpState& warp,
                            const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_imad_wide(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_imnmx(EngineT& eng, CtaT& cta, WarpState& warp,
                        const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_imnmx(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_isetp(EngineT& eng, CtaT& cta, WarpState& warp,
                        const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { (void)vec_isetp(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_lop(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_lop(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_shf(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_shf(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_popc(EngineT& eng, CtaT& cta, WarpState& warp,
                       const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_popc(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_farith(EngineT& eng, CtaT& cta, WarpState& warp,
                         const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_farith(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_ffma(EngineT& eng, CtaT& cta, WarpState& warp,
                       const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_ffma(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_fsetp(EngineT& eng, CtaT& cta, WarpState& warp,
                        const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_fsetp(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_i2f(EngineT& eng, CtaT& cta, WarpState& warp,
                      const DecodedInstr& instr) {
  return alu(eng, cta, warp, instr,
             [](WarpState& w, const DecodedInstr& i) { vec_i2f(w, i); });
}

template <typename EngineT, typename CtaT>
inline TrapKind h_ldg_row(EngineT& eng, CtaT& cta, WarpState& warp,
                          const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  return ldg_row_or_generic(eng, cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_stg_row(EngineT& eng, CtaT& cta, WarpState& warp,
                          const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  return stg_row_or_generic(eng, cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_lds_row(EngineT& eng, CtaT& cta, WarpState& warp,
                          const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  if (exec == kFullMask &&
      lds_row(warp, instr, cta.shared.data(), cta.shared.size()).state ==
          RowMem::kDone) {
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_sts_row(EngineT& eng, CtaT& cta, WarpState& warp,
                          const DecodedInstr& instr) {
  const u32 exec = exec_mask(warp, instr);
  account(eng, instr, exec);
  if (exec == kFullMask &&
      sts_row(warp, instr, cta.shared.data(), cta.shared.size()).state ==
          RowMem::kDone) {
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

// ---- fusion heads and tails ------------------------------------------------

template <typename EngineT, typename CtaT>
inline TrapKind h_cmp_bra_head(EngineT& eng, CtaT& cta, WarpState& warp,
                               const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: head is unguarded
  account(eng, instr, exec);
  if (exec != kFullMask) return eng.dispatch_clean(cta, warp, instr, exec);
  const u32 lanes = vec_isetp(warp, instr);
  // The ISETP just wrote the BRA's whole guard row, so the branch guard is
  // exactly these lanes (negated per the tail) masked to the active set.
  const DecodedInstr& tail = eng.dec.at(warp.pc + 1);
  warp.fuse_mask = (tail.guard_negated ? ~lanes : lanes) & warp.active();
  warp.fuse_pc = warp.pc + 1;
  ++warp.pc;
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_bra_fused_tail(EngineT& eng, [[maybe_unused]] CtaT& cta,
                                 WarpState& warp, const DecodedInstr& instr) {
  u32 exec;
  if (warp.fuse_pc == warp.pc) {
    exec = warp.fuse_mask;  // == guard_mask_fast: head wrote the guard row
    warp.fuse_pc = WarpState::kFuseInvalid;
  } else {
    exec = exec_mask(warp, instr);
  }
  account(eng, instr, exec);
  return bra_body(warp, instr, exec);
}

/// Shared IMAD.WIDE fusion head for LDG and STG tails: runs the multiply
/// row and, in the same lane loop, proves the tail's address row aligned
/// and in bounds. The stash is set only when every check passed under an
/// empty fault map — the tail then needs no validation at all.
template <typename EngineT, typename CtaT>
inline TrapKind h_addr_head(EngineT& eng, CtaT& cta, WarpState& warp,
                            const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: head is unguarded
  account(eng, instr, exec);
  if (exec != kFullMask) return eng.dispatch_clean(cta, warp, instr, exec);
  const DecodedInstr& tail = eng.dec.at(warp.pc + 1);
  AddrProbe probe;
  probe.off = tail.src[1].is_imm() ? tail.src[1].imm : 0;
  vec_imad_wide(warp, instr, &probe);
  if (probe.aligned && eng.mem.fault_free() &&
      eng.mem.row_u32_in_bounds(probe.lo, probe.hi)) {
    warp.fuse_mask = 0;
    warp.fuse_pc = warp.pc + 1;
  }
  ++warp.pc;
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_ldg_fused_tail(EngineT& eng, CtaT& cta, WarpState& warp,
                                 const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: tail is unguarded
  account(eng, instr, exec);
  if (warp.fuse_pc == warp.pc) {
    warp.fuse_pc = WarpState::kFuseInvalid;
    ldg_row_fused(warp, instr, eng.mem);
    ++warp.pc;
    return TrapKind::kNone;
  }
  return ldg_row_or_generic(eng, cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_stg_fused_tail(EngineT& eng, CtaT& cta, WarpState& warp,
                                 const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: tail is unguarded
  account(eng, instr, exec);
  if (warp.fuse_pc == warp.pc) {
    warp.fuse_pc = WarpState::kFuseInvalid;
    stg_row_fused(warp, instr, eng.mem);
    ++warp.pc;
    return TrapKind::kNone;
  }
  return stg_row_or_generic(eng, cta, warp, instr, exec);
}

template <typename EngineT, typename CtaT>
inline TrapKind h_ffma_chain_head(EngineT& eng, CtaT& cta, WarpState& warp,
                                  const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: head is unguarded
  account(eng, instr, exec);
  if (exec != kFullMask) return eng.dispatch_clean(cta, warp, instr, exec);
  vec_ffma(warp, instr);
  // Run the tail's row kernel now, in program order — its inputs may
  // include this head's destination and vice versa, and no other
  // instruction of this warp can observe the gap. The tail's slot then
  // only consumes the stash.
  vec_ffma(warp, eng.dec.at(warp.pc + 1));
  warp.fuse_mask = 0;
  warp.fuse_pc = warp.pc + 1;
  ++warp.pc;
  return TrapKind::kNone;
}

template <typename EngineT, typename CtaT>
inline TrapKind h_ffma_chain_tail(EngineT& eng, CtaT& cta, WarpState& warp,
                                  const DecodedInstr& instr) {
  const u32 exec = warp.active();  // lowering: tail is unguarded
  account(eng, instr, exec);
  if (warp.fuse_pc == warp.pc) {
    warp.fuse_pc = WarpState::kFuseInvalid;
    ++warp.pc;  // the head's slot already ran this FFMA's row kernel
    return TrapKind::kNone;
  }
  if (exec == kFullMask) {
    vec_ffma(warp, instr);
    ++warp.pc;
    return TrapKind::kNone;
  }
  return eng.dispatch_clean(cta, warp, instr, exec);
}

}  // namespace thr

// X-list of (Handler id, handler function), in exact Handler enum order —
// the computed-goto table is indexed by the raw enum value, so a mismatch
// here would jump to the wrong handler. The static_assert below pins the
// count; keep this list in lockstep with decoded.h.
#define GFI_THREADED_DISPATCH_LIST(X) \
  X(kGeneric, h_generic)              \
  X(kExit, h_exit)                    \
  X(kBra, h_bra)                      \
  X(kSync, h_sync)                    \
  X(kBar, h_bar)                      \
  X(kMov, h_mov)                      \
  X(kSel, h_sel)                      \
  X(kIAdd, h_iadd)                    \
  X(kIMul, h_imul)                    \
  X(kIMad32, h_imad32)                \
  X(kIMadWide, h_imad_wide)           \
  X(kIMnmx, h_imnmx)                  \
  X(kISetp, h_isetp)                  \
  X(kLop, h_lop)                      \
  X(kShf, h_shf)                      \
  X(kPopc, h_popc)                    \
  X(kFArith, h_farith)                \
  X(kFFma, h_ffma)                    \
  X(kFSetp, h_fsetp)                  \
  X(kI2F, h_i2f)                      \
  X(kLdgRow, h_ldg_row)               \
  X(kStgRow, h_stg_row)               \
  X(kLdsRow, h_lds_row)               \
  X(kStsRow, h_sts_row)               \
  X(kCmpBraHead, h_cmp_bra_head)      \
  X(kBraFusedTail, h_bra_fused_tail)  \
  X(kAddrLdgHead, h_addr_head)        \
  X(kLdgFusedTail, h_ldg_fused_tail)  \
  X(kAddrStgHead, h_addr_head)        \
  X(kStgFusedTail, h_stg_fused_tail)  \
  X(kFFmaChainHead, h_ffma_chain_head) \
  X(kFFmaChainTail, h_ffma_chain_tail)

/// One dynamic warp instruction on the threaded tier: direct dispatch on
/// the predecoded handler id. Replaces exec_instr's clean branch wholesale —
/// each handler does its own exec-mask computation and accounting, so fused
/// pairs keep per-instruction counts exact.
template <typename EngineT, typename CtaT>
inline TrapKind threaded_dispatch(EngineT& eng, CtaT& cta, WarpState& warp,
                                  const DecodedInstr& instr) {
#if defined(GFI_DISPATCH_GOTO)
#define GFI_X_LABEL(id, fn) &&lbl_##id,
  static const void* const table[] = {GFI_THREADED_DISPATCH_LIST(GFI_X_LABEL)};
#undef GFI_X_LABEL
  static_assert(sizeof(table) / sizeof(table[0]) == kHandlerCount,
                "dispatch table out of sync with Handler enum");
  goto* table[static_cast<int>(instr.handler)];
#define GFI_X_TARGET(id, fn) \
  lbl_##id : return thr::fn(eng, cta, warp, instr);
  GFI_THREADED_DISPATCH_LIST(GFI_X_TARGET)
#undef GFI_X_TARGET
#else
  switch (instr.handler) {
#define GFI_X_CASE(id, fn) \
  case Handler::id:        \
    return thr::fn(eng, cta, warp, instr);
    GFI_THREADED_DISPATCH_LIST(GFI_X_CASE)
#undef GFI_X_CASE
  }
  return thr::h_generic(eng, cta, warp, instr);  // unreachable
#endif
}

#undef GFI_THREADED_DISPATCH_LIST

}  // namespace gfi::sim::exec
