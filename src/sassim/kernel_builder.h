// Typed assembler for authoring kernels against the gpufi ISA.
//
// Workloads build their SASS-like kernels through this builder. It resolves
// labels, tracks the register/parameter footprint automatically, and offers
// structured-control-flow helpers (if_then, if_then_else, uniform_loop) that
// emit correct SSY/BRA/SYNC sequences so every divergence reconverges.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sassim/program.h"

namespace gfi::sim {

class KernelBuilder {
 public:
  using Label = u32;

  explicit KernelBuilder(std::string name) : name_(std::move(name)) {}

  // --- labels -------------------------------------------------------------
  [[nodiscard]] Label new_label();
  /// Binds `label` to the next emitted instruction.
  void bind(Label label);

  // --- raw emission ---------------------------------------------------------
  /// Emits an arbitrary instruction; returns its index. Register usage is
  /// tracked automatically.
  std::size_t emit(Instr instr);
  /// Applies an @P / @!P guard to the most recently emitted instruction.
  void guard_last(u8 pred, bool negated = false);

  // --- control flow -----------------------------------------------------------
  void nop();
  void exit_();
  /// Guarded exit: lanes satisfying the guard retire.
  void exit_if(u8 pred, bool negated = false);
  void bar();
  void bra(Label target, u8 guard = kPredT, bool negated = false);
  void ssy(Label reconv);
  void sync_();

  /// if (pred) { then_body() } with SIMT-safe reconvergence.
  void if_then(u8 pred, bool negated, const std::function<void()>& then_body);
  /// if (pred) { then_body() } else { else_body() }.
  void if_then_else(u8 pred, bool negated,
                    const std::function<void()>& then_body,
                    const std::function<void()>& else_body);
  /// do { body(); } while (++counter < bound) — counter pre-initialized by
  /// the caller; bound may be a register or immediate; `scratch_pred` is
  /// clobbered. Trip count must be >= 1 and warp-uniform.
  void uniform_loop(u16 counter, Operand bound, u8 scratch_pred,
                    const std::function<void()>& body);

  // --- moves, special registers, parameters ---------------------------------
  void mov_u32(u16 dst, Operand a);
  void mov_f32(u16 dst, f32 value);
  void mov_u64(u16 dst, u64 value);
  void sel(u16 dst, Operand a, Operand b, u8 pred, bool negated = false);
  void s2r(u16 dst, SpecialReg sr);
  void ldc_u32(u16 dst, u32 param_index);
  void ldc_u64(u16 dst, u32 param_index);

  // --- integer -----------------------------------------------------------
  void iadd_u32(u16 dst, Operand a, Operand b);
  void iadd_u64(u16 dst, Operand a, Operand b);
  void imul_u32(u16 dst, Operand a, Operand b);
  void imad_u32(u16 dst, Operand a, Operand b, Operand c);
  /// IMAD.WIDE: dst(pair) = u32(a) * u32(b) + c(pair).
  void imad_wide(u16 dst, Operand a, Operand b, Operand c);
  void imnmx_s32(u16 dst, Operand a, Operand b, MinMax mm);
  void imnmx_u32(u16 dst, Operand a, Operand b, MinMax mm);
  void isetp(CmpOp cmp, u8 dst_pred, Operand a, Operand b,
             DType dtype = DType::kU32);
  void lop(LopKind kind, u16 dst, Operand a, Operand b);
  void shf(ShiftKind kind, u16 dst, Operand a, Operand amount,
           DType dtype = DType::kU32);
  void popc(u16 dst, Operand a);

  // --- floating point ------------------------------------------------------
  void fadd_f32(u16 dst, Operand a, Operand b);
  void fmul_f32(u16 dst, Operand a, Operand b);
  void ffma_f32(u16 dst, Operand a, Operand b, Operand c);
  void fmnmx_f32(u16 dst, Operand a, Operand b, MinMax mm);
  void fadd_f64(u16 dst, Operand a, Operand b);
  void fmul_f64(u16 dst, Operand a, Operand b);
  void ffma_f64(u16 dst, Operand a, Operand b, Operand c);
  void fsetp(CmpOp cmp, u8 dst_pred, Operand a, Operand b,
             DType dtype = DType::kF32);
  void mufu(MufuKind kind, u16 dst, Operand a);
  void f2i(u16 dst, Operand a, DType src_type = DType::kF32);
  void i2f(u16 dst, Operand a, DType dst_type = DType::kF32);
  void f2f_widen(u16 dst, Operand a);   // F32 -> F64
  void f2f_narrow(u16 dst, Operand a);  // F64 -> F32

  // --- memory ----------------------------------------------------------------
  void ldg(u16 dst, u16 addr_reg, u64 offset = 0, u8 width = 4);
  void stg(u16 addr_reg, u16 src, u64 offset = 0, u8 width = 4);
  void lds(u16 dst, u16 addr_reg, u64 offset = 0, u8 width = 4);
  void sts(u16 addr_reg, u16 src, u64 offset = 0, u8 width = 4);
  void atomg(AtomKind kind, u16 dst, u16 addr_reg, Operand a,
             Operand b = Operand::none(), DType dtype = DType::kU32);
  void atoms(AtomKind kind, u16 dst, u16 addr_reg, Operand a,
             Operand b = Operand::none(), DType dtype = DType::kU32);

  // --- warp level ---------------------------------------------------------------
  void shfl(ShflKind kind, u16 dst, u16 src, Operand lane);
  void vote(VoteKind kind, Operand dst, u8 src_pred, bool negated = false);
  /// m16n8k8 MMA: d_frag(4 regs) = a_frag(4) * b_frag(2) + c_frag(4).
  void hmma(u16 d_base, u16 a_base, u16 b_base, u16 c_base);

  // --- resources ---------------------------------------------------------------
  /// Declares static shared memory for the kernel (bytes per CTA).
  void set_shared_bytes(u32 bytes) { shared_bytes_ = bytes; }

  /// Resolves labels, validates, and produces the immutable Program.
  [[nodiscard]] Result<Program> build();

 private:
  void note_reg(const Operand& operand, u16 span);
  void note_dst(const Instr& instr);
  std::size_t emit_op(Opcode op, DType dtype, u8 sub, Operand dst, Operand a,
                      Operand b = Operand::none(),
                      Operand c = Operand::none());

  std::string name_;
  std::vector<Instr> code_;
  std::vector<i64> label_pos_;                    ///< label -> instr index
  std::vector<std::pair<std::size_t, Label>> fixups_;  ///< branch -> label
  u16 num_regs_ = 0;
  u32 shared_bytes_ = 0;
  u32 num_params_ = 0;
};

}  // namespace gfi::sim
