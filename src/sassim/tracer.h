// Instruction tracer: an InstrumentHook that records (or streams) the
// dynamic instruction stream with filtering — the NVBit "instr_count /
// opcode_hist / trace" tools rolled into one. Used for debugging kernels,
// for replaying the neighbourhood of an injection site, and by tests.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/types.h"
#include "sassim/instrument.h"

namespace gfi::sim {

/// One traced dynamic instruction.
struct TraceEntry {
  u64 dyn_index = 0;
  u32 cta = 0;
  u32 warp = 0;
  u32 pc = 0;
  Opcode op = Opcode::kNop;
  InstrGroup group = InstrGroup::kControl;
  u32 exec_mask = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Filter + bounded recording. By default records everything up to
/// `max_entries`; set `filter` to record a subset (e.g. one warp, one
/// opcode group, a dynamic-index window around an injection site).
class TracerHook final : public InstrumentHook {
 public:
  using Filter = std::function<bool(const TraceEntry&)>;

  explicit TracerHook(std::size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  void set_filter(Filter filter) { filter_ = std::move(filter); }

  /// Convenience filters.
  static Filter only_warp(u32 cta, u32 warp);
  static Filter only_group(InstrGroup group);
  static Filter window(u64 first_dyn, u64 last_dyn);

  /// Declares that nothing after dynamic index `last_dyn` is of interest
  /// (pair with `window`): once the stream passes it the tracer reports
  /// done_observing() and the engine may finish the launch on the clean
  /// path. Without this the tracer observes the whole launch.
  void stop_after(u64 last_dyn) { stop_after_ = last_dyn; }
  [[nodiscard]] bool done_observing() const override {
    return seen_ > stop_after_;
  }

  void on_before_instr(InstrContext& ctx) override;

  [[nodiscard]] const std::vector<TraceEntry>& entries() const {
    return entries_;
  }
  [[nodiscard]] u64 seen() const { return seen_; }
  [[nodiscard]] bool truncated() const { return truncated_; }
  void clear();

  /// Multi-line listing of the captured trace.
  [[nodiscard]] std::string to_string() const;

 private:
  std::size_t max_entries_;
  Filter filter_;
  std::vector<TraceEntry> entries_;
  u64 seen_ = 0;
  u64 stop_after_ = ~0ULL;  ///< dynamic index bound set via stop_after()
  bool truncated_ = false;
};

}  // namespace gfi::sim
