#include "ecc/secded.h"

#include <array>

#include "common/bitutil.h"

namespace gfi::ecc {
namespace {

// Classic extended-Hamming layout: codeword positions 1..71 carry the 7
// Hamming parity bits at power-of-two positions (1,2,4,...,64) and the 64
// data bits at the remaining positions; one extra overall-parity bit makes
// the code double-error-detecting.

constexpr int kPositions = 72;  // 1..71 used; index 0 unused

struct Layout {
  std::array<u32, 64> pos_of_data{};  // data bit -> codeword position
  std::array<int, kPositions> data_of_pos{};  // position -> data bit or -1
};

constexpr bool is_power_of_two(u32 v) { return v != 0 && (v & (v - 1)) == 0; }

constexpr Layout make_layout() {
  Layout layout{};
  for (auto& entry : layout.data_of_pos) entry = -1;
  u32 data_bit = 0;
  for (u32 pos = 1; pos < kPositions && data_bit < 64; ++pos) {
    if (is_power_of_two(pos)) continue;
    layout.pos_of_data[data_bit] = pos;
    layout.data_of_pos[pos] = static_cast<int>(data_bit);
    ++data_bit;
  }
  return layout;
}

constexpr Layout kLayout = make_layout();

/// XOR of data bits whose codeword position has bit `j` set.
u32 hamming_parity(u64 data, u32 j) {
  u32 parity = 0;
  for (u32 bit = 0; bit < 64; ++bit) {
    if ((kLayout.pos_of_data[bit] >> j) & 1u) {
      parity ^= get_bit64(data, bit);
    }
  }
  return parity;
}

}  // namespace

Codeword encode(u64 data) {
  u8 check = 0;
  u32 overall = popcount64(data) & 1;
  for (u32 j = 0; j < 7; ++j) {
    const u32 p = hamming_parity(data, j);
    check |= static_cast<u8>(p << j);
    overall ^= p;
  }
  check |= static_cast<u8>(overall << 7);
  return {data, check};
}

DecodeResult decode(const Codeword& word) {
  // Syndrome: received parities XOR recomputed parities.
  u32 syndrome = 0;
  u32 overall = popcount64(word.data) & 1;
  for (u32 j = 0; j < 7; ++j) {
    const u32 received = (word.check >> j) & 1u;
    overall ^= received;
    if (received != hamming_parity(word.data, j)) syndrome |= 1u << j;
  }
  const bool overall_mismatch = overall != ((word.check >> 7) & 1u);

  if (syndrome == 0) {
    // Either clean, or the overall parity bit itself flipped.
    return {overall_mismatch ? DecodeStatus::kCorrectedSingle
                             : DecodeStatus::kClean,
            word.data};
  }

  if (!overall_mismatch) {
    // Nonzero syndrome with even overall parity: two bits flipped.
    return {DecodeStatus::kDetectedDouble, word.data};
  }

  // Single-bit error at codeword position `syndrome`.
  if (syndrome < kPositions) {
    const int data_bit = kLayout.data_of_pos[syndrome];
    if (data_bit >= 0) {
      return {DecodeStatus::kCorrectedSingle,
              flip_bit64(word.data, static_cast<u32>(data_bit))};
    }
    // Error was in a check bit; data is intact.
    return {DecodeStatus::kCorrectedSingle, word.data};
  }
  // Syndrome points outside the codeword: must be a multi-bit upset.
  return {DecodeStatus::kDetectedDouble, word.data};
}

Codeword flip_codeword_bit(Codeword word, u32 bit) {
  if (bit < 64) {
    word.data = flip_bit64(word.data, bit);
  } else {
    word.check = static_cast<u8>(word.check ^ (1u << (bit - 64)));
  }
  return word;
}

}  // namespace gfi::ecc
