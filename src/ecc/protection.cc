#include "ecc/protection.h"

namespace gfi::ecc {

const char* to_string(EccMode mode) {
  switch (mode) {
    case EccMode::kDisabled:
      return "off";
    case EccMode::kSecded:
      return "secded";
  }
  return "?";
}

const char* to_string(ReadEffect effect) {
  switch (effect) {
    case ReadEffect::kClean:
      return "clean";
    case ReadEffect::kRawCorrupted:
      return "raw-corrupted";
    case ReadEffect::kCorrected:
      return "corrected";
    case ReadEffect::kDoubleBitTrap:
      return "double-bit-trap";
  }
  return "?";
}

}  // namespace gfi::ecc
