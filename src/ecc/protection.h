// Observable-equivalent ECC behaviour model used on the memory/RF hot path.
//
// Instead of encoding/decoding every access, injected upsets are recorded in
// a fault map (word address -> flipped-bit mask) and this policy decides what
// a read observes: the corrected value plus an SBE count, a double-bit trap,
// or the raw corrupted bits when ECC is disabled. ecc/secded.h proves the
// SECDED code really behaves this way; tests cross-validate the two.
#pragma once

#include "common/bitutil.h"
#include "common/types.h"

namespace gfi::ecc {

/// Protection applied to a storage structure.
enum class EccMode {
  kDisabled,  ///< reads observe raw (possibly corrupted) bits
  kSecded,    ///< SECDED: 1-bit corrected + counted, >=2-bit detected (trap)
};

/// What a read of a faulted word observes under a given mode.
enum class ReadEffect {
  kClean,          ///< no fault present
  kRawCorrupted,   ///< ECC off: corrupted bits returned silently
  kCorrected,      ///< single-bit fault corrected; SBE counter bumps
  kDoubleBitTrap,  ///< >=2 flipped bits detected but uncorrectable (DUE)
};

/// Classifies a read of a word whose injected flip mask is `flip_mask`.
constexpr ReadEffect classify_read(EccMode mode, u64 flip_mask) {
  if (flip_mask == 0) return ReadEffect::kClean;
  if (mode == EccMode::kDisabled) return ReadEffect::kRawCorrupted;
  return popcount64(flip_mask) == 1 ? ReadEffect::kCorrected
                                    : ReadEffect::kDoubleBitTrap;
}

/// Running counters mirroring nvidia-smi's volatile ECC counters.
struct EccCounters {
  u64 corrected_sbe = 0;    ///< single-bit errors corrected
  u64 detected_dbe = 0;     ///< double-bit errors detected (trapped)
  u64 silent_corrupted = 0; ///< ECC-off reads that returned corrupted data

  void merge(const EccCounters& other) {
    corrected_sbe += other.corrected_sbe;
    detected_dbe += other.detected_dbe;
    silent_corrupted += other.silent_corrupted;
  }
};

const char* to_string(EccMode mode);
const char* to_string(ReadEffect effect);

}  // namespace gfi::ecc
