// SECDED Hamming(72,64) codec — the code class NVIDIA uses for register
// files, caches and (pre-HBM3) DRAM: Single-Error-Correct,
// Double-Error-Detect over 64 data bits with 8 check bits.
//
// The memory system's hot path does not run this codec per access (it uses
// the observable-equivalent fault map in ecc/protection.h); the codec exists
// to validate that model bit-for-bit and as a public API for users studying
// code behaviour directly.
#pragma once

#include "common/types.h"

namespace gfi::ecc {

/// A 72-bit codeword: 64 data bits + 8 check bits
/// (7 Hamming parity bits + 1 overall parity bit).
struct Codeword {
  u64 data = 0;
  u8 check = 0;

  friend constexpr bool operator==(const Codeword&, const Codeword&) = default;
};

/// Decode classification.
enum class DecodeStatus {
  kClean,            ///< no error detected
  kCorrectedSingle,  ///< single-bit error corrected (data or check bit)
  kDetectedDouble,   ///< double-bit error detected, not correctable
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  u64 data = 0;  ///< corrected data (valid unless kDetectedDouble)
};

/// Encodes 64 data bits into a SECDED codeword.
Codeword encode(u64 data);

/// Decodes a (possibly corrupted) codeword.
DecodeResult decode(const Codeword& word);

/// Flips one bit of the codeword: bits [0,64) address data bits,
/// bits [64,72) address check bits. Used by tests and demos.
Codeword flip_codeword_bit(Codeword word, u32 bit);

}  // namespace gfi::ecc
