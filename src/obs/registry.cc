#include "obs/registry.h"

#include <cmath>
#include <cstdio>

#include "common/jsonl.h"

namespace gfi::obs {
namespace {

/// Bare JSON number with append_f64's conventions (%.17g, non-finite→null).
std::string bare_f64(f64 value) {
  if (!std::isfinite(value)) return "null";
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

LatencyHistogram& Registry::histogram(const std::string& name, f64 lo, f64 hi,
                                      std::size_t bins) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>(lo, hi, bins);
  return *slot;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges[name] = gauge->value();
  }
  for (const auto& [name, histogram] : histograms_) {
    const LatencyHistogram::Sample sample = histogram->sample();
    Snapshot::HistogramSnapshot h;
    h.lo = sample.histogram.bin_lo(0);
    h.hi = sample.histogram.bin_hi(sample.histogram.bins() - 1);
    h.bin_counts.reserve(sample.histogram.bins());
    for (std::size_t b = 0; b < sample.histogram.bins(); ++b) {
      h.bin_counts.push_back(sample.histogram.count(b));
    }
    h.dropped = sample.histogram.dropped();
    h.stats = sample.stats;
    snap.histograms[name] = std::move(h);
  }
  return snap;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

void Snapshot::merge(const Snapshot& other) {
  for (const auto& [name, value] : other.counters) counters[name] += value;
  for (const auto& [name, value] : other.gauges) gauges[name] = value;
  for (const auto& [name, histogram] : other.histograms) {
    auto it = histograms.find(name);
    if (it == histograms.end()) {
      histograms[name] = histogram;
      continue;
    }
    HistogramSnapshot& mine = it->second;
    if (mine.bin_counts.size() != histogram.bin_counts.size() ||
        mine.lo != histogram.lo || mine.hi != histogram.hi) {
      // Incompatible bounds cannot fold bin-by-bin; keep the moments (which
      // merge exactly regardless) and drop the other's bins into dropped so
      // totals stay conserved.
      for (f64 c : histogram.bin_counts) mine.dropped += c;
    } else {
      for (std::size_t b = 0; b < mine.bin_counts.size(); ++b) {
        mine.bin_counts[b] += histogram.bin_counts[b];
      }
    }
    mine.dropped += histogram.dropped;
    mine.stats.merge(histogram.stats);
  }
}

std::string Snapshot::to_json() const {
  // Nested JSON; the flat jsonl helpers write each leaf object and this
  // function glues the sections together.
  std::string out = "{\n \"counters\": {";
  std::string line;
  bool first = true;
  for (const auto& [name, value] : counters) {
    line.clear();
    jsonl::append_u64(line, name.c_str(), value);
    out += first ? "\n  " : ",\n  ";
    out += line;
    first = false;
  }
  out += first ? "},\n" : "\n },\n";
  out += " \"gauges\": {";
  first = true;
  for (const auto& [name, value] : gauges) {
    line.clear();
    jsonl::append_f64(line, name.c_str(), value);
    out += first ? "\n  " : ",\n  ";
    out += line;
    first = false;
  }
  out += first ? "},\n" : "\n },\n";
  out += " \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : histograms) {
    line = "{";
    jsonl::append_f64(line, "lo", histogram.lo);
    jsonl::append_f64(line, "hi", histogram.hi);
    jsonl::append_key(line, "bins");
    line += '[';
    for (std::size_t b = 0; b < histogram.bin_counts.size(); ++b) {
      if (b) line += ',';
      line += bare_f64(histogram.bin_counts[b]);
    }
    line += ']';
    jsonl::append_f64(line, "dropped", histogram.dropped);
    jsonl::append_u64(line, "count", histogram.stats.count());
    jsonl::append_f64(line, "mean", histogram.stats.mean());
    jsonl::append_f64(line, "stddev", histogram.stats.stddev());
    jsonl::append_f64(line, "min", histogram.stats.min());
    jsonl::append_f64(line, "max", histogram.stats.max());
    line += '}';
    out += first ? "\n  " : ",\n  ";
    out += '"';
    out += name;
    out += "\": ";
    out += line;
    first = false;
  }
  out += first ? "}\n}\n" : "\n }\n}\n";
  return out;
}

}  // namespace gfi::obs
