#include "obs/heartbeat.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <optional>
#include <sstream>

#include "common/failpoint.h"
#include "common/jsonl.h"

namespace gfi::obs {

std::string heartbeat_line(const HeartbeatState& state) {
  std::string out = "{";
  jsonl::append_str(out, "ev", state.finished ? "done" : "heartbeat");
  jsonl::append_str(out, "workload", state.workload);
  jsonl::append_str(out, "arch", state.arch);
  jsonl::append_u64(out, "shard", state.shard_index);
  jsonl::append_u64(out, "shard_count", state.shard_count);
  jsonl::append_u64(out, "done", state.done);
  jsonl::append_u64(out, "total", state.total);
  jsonl::append_u64_array(out, "outcome_counts", state.outcome_counts);
  jsonl::append_f64(out, "t_s", state.elapsed_s);
  jsonl::append_f64(out, "rate", state.rate);
  jsonl::append_f64(out, "eta_s", state.eta_s);
  if (state.stop_half_width > 0.0) {
    jsonl::append_f64(out, "stop_hw", state.stop_half_width);
  }
  out += '}';
  return out;
}

Result<HeartbeatState> parse_heartbeat(const std::string& line) {
  jsonl::Fields fields;
  if (!jsonl::parse_fields(line, &fields)) {
    return Status::invalid_argument("heartbeat: not a JSON object");
  }
  auto ev = jsonl::get_str(fields, "ev");
  auto workload = jsonl::get_str(fields, "workload");
  auto arch = jsonl::get_str(fields, "arch");
  auto shard = jsonl::get_u64(fields, "shard");
  auto shard_count = jsonl::get_u64(fields, "shard_count");
  auto done = jsonl::get_u64(fields, "done");
  auto total = jsonl::get_u64(fields, "total");
  auto t_s = jsonl::get_f64(fields, "t_s");
  auto rate = jsonl::get_f64(fields, "rate");
  auto eta = jsonl::get_f64(fields, "eta_s");
  auto counts = fields.arrays.find("outcome_counts");
  if (!ev || (*ev != "heartbeat" && *ev != "done")) {
    return Status::invalid_argument("heartbeat: missing or unknown ev");
  }
  if (!workload || !arch || !shard || !shard_count || !done || !total ||
      !t_s || !rate || !eta || counts == fields.arrays.end()) {
    return Status::invalid_argument("heartbeat: missing required field");
  }
  HeartbeatState state;
  state.finished = *ev == "done";
  state.workload = *workload;
  state.arch = *arch;
  state.shard_index = static_cast<u32>(*shard);
  state.shard_count = static_cast<u32>(*shard_count);
  state.done = *done;
  state.total = *total;
  state.outcome_counts = counts->second;
  state.elapsed_s = *t_s;
  state.rate = *rate;
  state.eta_s = *eta;
  // Absent in planner-off sidecars and older builds.
  state.stop_half_width = jsonl::get_f64(fields, "stop_hw").value_or(0.0);
  return state;
}

Result<HeartbeatState> load_status_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return Status::not_found("cannot open status file " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  const std::string data = buffer.str();

  // Keep the last parseable line: a shard killed mid-write leaves a torn
  // tail, and a reader racing the writer can see a half-flushed line; both
  // must degrade to slightly stale progress, never to an error.
  std::optional<HeartbeatState> last;
  std::size_t pos = 0;
  while (pos < data.size()) {
    std::size_t newline = data.find('\n', pos);
    if (newline == std::string::npos) newline = data.size();
    const std::string line = data.substr(pos, newline - pos);
    if (!line.empty()) {
      auto parsed = parse_heartbeat(line);
      if (parsed.is_ok()) last = std::move(parsed).take();
    }
    pos = newline + 1;
  }
  if (!last) {
    return Status::failed_precondition("status file " + path +
                                       " has no complete heartbeat record");
  }
  return *last;
}

std::string status_path_for_journal(const std::string& journal_path) {
  return journal_path + ".status.jsonl";
}

Result<u64> sidecar_age_ms(const std::string& path) {
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  if (ec) {
    return Status::not_found("cannot stat sidecar " + path + ": " +
                             ec.message());
  }
  const auto age = std::filesystem::file_time_type::clock::now() - mtime;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(age);
  // A clock step can make mtime appear to be in the future; clamp to fresh.
  return ms.count() < 0 ? 0 : static_cast<u64>(ms.count());
}

HeartbeatWriter::HeartbeatWriter(std::FILE* file, HeartbeatState state,
                                 u64 interval_ms)
    : file_(file),
      state_(std::move(state)),
      session_start_done_(state_.done),
      interval_ms_(interval_ms),
      start_(std::chrono::steady_clock::now()),
      last_beat_(start_) {}

HeartbeatWriter::~HeartbeatWriter() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    // An error-path unwind still flushes the latest progress; only finish()
    // may declare the shard done.
    if (!finished_ && file_) write_line_locked(/*done_event=*/false);
  }
  if (file_) std::fclose(file_);
}

Result<std::unique_ptr<HeartbeatWriter>> HeartbeatWriter::create(
    const std::string& path, const HeartbeatState& initial, u64 interval_ms) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (!file) {
    return Status::internal("cannot create status file " + path + ": " +
                            std::strerror(errno));
  }
  auto writer = std::unique_ptr<HeartbeatWriter>(
      new HeartbeatWriter(file, initial, interval_ms));
  std::lock_guard<std::mutex> lock(writer->mutex_);
  writer->write_line_locked(/*done_event=*/false);
  return writer;
}

void HeartbeatWriter::record(int outcome_index) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++state_.done;
  if (outcome_index >= 0 &&
      static_cast<std::size_t>(outcome_index) < state_.outcome_counts.size()) {
    ++state_.outcome_counts[static_cast<std::size_t>(outcome_index)];
  }
  const auto now = std::chrono::steady_clock::now();
  const u64 since_beat_ms =
      static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - last_beat_)
                           .count());
  if (since_beat_ms >= interval_ms_ || state_.done == state_.total) {
    write_line_locked(/*done_event=*/false);
  }
}

void HeartbeatWriter::idle_beat() {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  const u64 since_beat_ms =
      static_cast<u64>(std::chrono::duration_cast<std::chrono::milliseconds>(
                           now - last_beat_)
                           .count());
  if (since_beat_ms >= interval_ms_) write_line_locked(/*done_event=*/false);
}

void HeartbeatWriter::finish() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finished_) return;
  write_line_locked(/*done_event=*/true);
  finished_ = true;
}

void HeartbeatWriter::write_line_locked(bool done_event) {
  const auto now = std::chrono::steady_clock::now();
  state_.elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<f64>>(now - start_)
          .count();
  const u64 done_this_session = state_.done - session_start_done_;
  state_.rate = state_.elapsed_s > 0.0
                    ? static_cast<f64>(done_this_session) / state_.elapsed_s
                    : 0.0;
  const u64 remaining = state_.total > state_.done
                            ? state_.total - state_.done
                            : 0;
  // rate 0 with work remaining gives eta NaN -> serialized as null.
  state_.eta_s = remaining == 0 ? 0.0
                 : state_.rate > 0.0
                     ? static_cast<f64>(remaining) / state_.rate
                     : std::numeric_limits<f64>::quiet_NaN();
  state_.finished = done_event;
  const std::string line = heartbeat_line(state_) + "\n";
  // Write failures (real or injected) are swallowed: heartbeats are
  // disposable telemetry and must never abort a campaign. The sidecar
  // simply goes stale, which is precisely the supervisor's stall signal.
  const bool drop = fp::enabled() &&
                    fp::hit("heartbeat.write").action == fp::Action::kErr;
  if (!drop &&
      std::fwrite(line.data(), 1, line.size(), file_) == line.size()) {
    std::fflush(file_);
  }
  last_beat_ = now;
}

}  // namespace gfi::obs
