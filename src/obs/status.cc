#include "obs/status.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "common/stats.h"
#include "common/table.h"

namespace gfi::obs {
namespace {

namespace fs = std::filesystem;

constexpr const char* kSuffix = ".status.jsonl";

bool has_status_suffix(const std::string& name) {
  const std::string suffix = kSuffix;
  return name.size() >= suffix.size() &&
         name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string fmt_eta(f64 eta_s) {
  if (std::isnan(eta_s)) return "?";
  if (eta_s >= 3600.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1fh", eta_s / 3600.0);
    return buffer;
  }
  if (eta_s >= 60.0) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.1fm", eta_s / 60.0);
    return buffer;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1fs", eta_s);
  return buffer;
}

}  // namespace

Result<std::vector<ShardStatus>> load_status(const std::string& target) {
  std::vector<std::string> paths;
  std::error_code ec;
  if (fs::is_directory(target, ec)) {
    for (const auto& entry : fs::directory_iterator(target, ec)) {
      if (entry.is_regular_file() &&
          has_status_suffix(entry.path().filename().string())) {
        paths.push_back(entry.path().string());
      }
    }
    if (paths.empty()) {
      return Status::not_found("no *" + std::string(kSuffix) + " files in " +
                               target);
    }
    std::sort(paths.begin(), paths.end());
  } else if (has_status_suffix(target)) {
    paths.push_back(target);
  } else {
    // Treat anything else as a journal path and look for its sidecar.
    paths.push_back(status_path_for_journal(target));
  }

  std::vector<ShardStatus> shards;
  Status first_error = Status::ok();
  for (const std::string& path : paths) {
    auto loaded = load_status_file(path);
    if (!loaded.is_ok()) {
      // A sidecar whose shard died before its first complete line is stale
      // noise, not a reason to hide every other shard.
      if (first_error.is_ok()) first_error = loaded.status();
      continue;
    }
    shards.push_back({path, std::move(loaded).take()});
  }
  if (shards.empty()) return first_error;
  std::sort(shards.begin(), shards.end(),
            [](const ShardStatus& a, const ShardStatus& b) {
              return a.state.shard_index < b.state.shard_index;
            });
  return shards;
}

std::string render_status(const std::vector<ShardStatus>& shards,
                          const std::vector<std::string>& outcome_names) {
  std::ostringstream out;
  if (shards.empty()) return "no shard status found\n";

  const HeartbeatState& first = shards.front().state;
  out << "Campaign status: " << first.workload << " on " << first.arch << " ("
      << shards.size() << " of " << first.shard_count
      << " shard(s) reporting)\n";

  Table table;
  table.set_header({"shard", "done", "%", "rate/s", "eta", "state"});
  u64 pooled_done = 0;
  u64 pooled_total = 0;
  f64 pooled_rate = 0.0;
  std::vector<u64> pooled_counts;
  for (const ShardStatus& shard : shards) {
    const HeartbeatState& s = shard.state;
    pooled_done += s.done;
    pooled_total += s.total;
    if (!s.finished) pooled_rate += s.rate;
    if (s.outcome_counts.size() > pooled_counts.size()) {
      pooled_counts.resize(s.outcome_counts.size(), 0);
    }
    for (std::size_t o = 0; o < s.outcome_counts.size(); ++o) {
      pooled_counts[o] += s.outcome_counts[o];
    }
    const f64 frac =
        s.total ? static_cast<f64>(s.done) / static_cast<f64>(s.total) : 0.0;
    table.add_row({std::to_string(s.shard_index) + "/" +
                       std::to_string(s.shard_count),
                   std::to_string(s.done) + "/" + std::to_string(s.total),
                   Table::pct(frac, 1), Table::fmt(s.rate, 1),
                   s.finished ? "-" : fmt_eta(s.eta_s),
                   s.finished ? "done" : "running"});
  }
  out << table.to_ascii();

  if (pooled_done > 0) {
    Table outcomes("pooled outcomes over " + std::to_string(pooled_done) +
                   " injections (Wilson 95% CI)");
    outcomes.set_header({"outcome", "count", "rate", "95% CI"});
    for (std::size_t o = 0; o < pooled_counts.size(); ++o) {
      const std::string name = o < outcome_names.size()
                                   ? outcome_names[o]
                                   : "outcome" + std::to_string(o);
      const auto ci = stats::wilson_interval(pooled_counts[o], pooled_done);
      const f64 rate =
          static_cast<f64>(pooled_counts[o]) / static_cast<f64>(pooled_done);
      outcomes.add_row({name, std::to_string(pooled_counts[o]),
                        Table::pct(rate, 2),
                        "[" + Table::pct(ci.lo, 2) + ", " +
                            Table::pct(ci.hi, 2) + "]"});
    }
    out << outcomes.to_ascii();
  }

  const u64 remaining = pooled_total > pooled_done
                            ? pooled_total - pooled_done
                            : 0;
  const f64 frac = pooled_total ? static_cast<f64>(pooled_done) /
                                      static_cast<f64>(pooled_total)
                                : 0.0;
  out << "total: " << pooled_done << "/" << pooled_total << " ("
      << Table::pct(frac, 1) << ")";
  if (remaining == 0) {
    out << ", complete\n";
  } else if (pooled_rate > 0.0) {
    out << ", eta ~" << fmt_eta(static_cast<f64>(remaining) / pooled_rate)
        << "\n";
  } else {
    out << ", eta ?\n";
  }
  return out.str();
}

}  // namespace gfi::obs
