// Multi-shard campaign status: discovers heartbeat sidecars, pools their
// latest records, and renders the `gpufi status` progress report — per-shard
// completion and rate, pooled outcome rates with Wilson 95% CIs, and an ETA.
//
// The renderer is deliberately decoupled from fi:: (obs sits below fi in the
// layering): outcome display names are passed in by the caller, and any
// outcome index beyond the provided names renders as "outcome<N>".
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "obs/heartbeat.h"

namespace gfi::obs {

/// The freshest record of one shard's sidecar, plus where it came from.
struct ShardStatus {
  std::string path;
  HeartbeatState state;
};

/// Loads shard statuses from `target`: a single `.status.jsonl` file, a
/// journal path (its sidecar is used), or a directory scanned (non-
/// recursively) for `*.status.jsonl`. Shards are ordered by shard index.
/// Fails when nothing loadable is found.
Result<std::vector<ShardStatus>> load_status(const std::string& target);

/// Renders the status report. `outcome_names[i]` labels outcome index i
/// (the campaign's fi::Outcome order).
std::string render_status(const std::vector<ShardStatus>& shards,
                          const std::vector<std::string>& outcome_names);

}  // namespace gfi::obs
