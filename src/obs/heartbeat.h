// Periodic per-shard heartbeat stream for long-running campaigns.
//
// Each campaign shard appends self-contained progress records to a sidecar
// file next to its journal (`<journal>.status.jsonl`), one flushed JSONL
// line per beat:
//
//   {"ev":"heartbeat","workload":"gemm","arch":"A100","shard":0,
//    "shard_count":4,"done":120,"total":250,"outcome_counts":[...],
//    "t_s":9.8,"rate":12.2,"eta_s":10.6}
//
// The final line on completion carries ev:"done". The writer flushes every
// line, so a killed shard leaves at worst one torn trailing line — readers
// keep the last parseable record, mirroring the journal's resume rule.
// Heartbeats deliberately live in a sidecar, NOT interleaved in the journal:
// the journal is the campaign's replayable source of truth and must stay a
// dense record-per-injection log that merge/resume can validate; heartbeats
// are disposable telemetry, overwritten per run and never merged.
//
// The serialization uses the same flat-JSONL helpers as fi::Journal
// (common/jsonl.h), so non-finite rates/ETAs (an idle shard has rate 0 and
// ETA NaN) are valid JSON (`null`) and parse back as NaN.
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace gfi::obs {

/// One parsed heartbeat record; also the writer's identity/progress state.
struct HeartbeatState {
  std::string workload;
  std::string arch;
  u32 shard_index = 0;
  u32 shard_count = 1;
  u64 done = 0;           ///< completed injections (resumed ones included)
  u64 total = 0;          ///< this shard's slice size
  std::vector<u64> outcome_counts;  ///< indexed by fi::Outcome order
  f64 elapsed_s = 0.0;    ///< wall seconds since the shard (re)started
  f64 rate = 0.0;         ///< injections/s this session (0 until work runs)
  f64 eta_s = 0.0;        ///< remaining/rate; NaN when rate is 0
  /// Adaptive-campaign stop target (0 when the stopping rule is off).
  /// Serialized only when nonzero, so planner-off sidecars are unchanged;
  /// `gpufi status` uses it to render per-outcome CI convergence.
  f64 stop_half_width = 0.0;
  bool finished = false;  ///< last record carried ev:"done"
};

/// Serializes one heartbeat line (no trailing newline). `ev` is "heartbeat"
/// or "done".
std::string heartbeat_line(const HeartbeatState& state);

/// Parses one line; fails on malformed/torn input.
Result<HeartbeatState> parse_heartbeat(const std::string& line);

/// Loads a sidecar file and returns the LAST parseable record (a torn or
/// corrupt tail never hides earlier progress). Fails only when no record
/// parses at all.
Result<HeartbeatState> load_status_file(const std::string& path);

/// The sidecar path for a journal: `<journal>.status.jsonl`.
std::string status_path_for_journal(const std::string& journal_path);

/// Milliseconds since the sidecar file was last written — the supervisor's
/// stall signal: a live shard beats at least every heartbeat interval, so a
/// sidecar far older than that means the worker is hung (or its IO is).
/// kNotFound when the sidecar does not exist yet.
Result<u64> sidecar_age_ms(const std::string& path);

/// Thread-safe heartbeat emitter. record() is called once per completed
/// injection; a line is written when `interval_ms` has elapsed since the
/// last one (0 = every record, used by tests), and finish()/the destructor
/// always write a final line so crashes and error returns leave fresh state.
class HeartbeatWriter {
 public:
  /// Truncates `path` and writes an initial heartbeat for `initial` (which
  /// carries identity plus any resumed progress).
  static Result<std::unique_ptr<HeartbeatWriter>> create(
      const std::string& path, const HeartbeatState& initial, u64 interval_ms);

  ~HeartbeatWriter();
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  /// Counts one completed injection with the given outcome index and beats
  /// if the interval elapsed. Out-of-range indices only bump `done`.
  void record(int outcome_index);

  /// Beats without counting progress, if the interval elapsed. Called by
  /// plan-following workers while parked waiting for the supervisor, so the
  /// stall detector can tell "waiting" from "hung".
  void idle_beat();

  /// Writes the final ev:"done" record.
  void finish();

 private:
  HeartbeatWriter(std::FILE* file, HeartbeatState state, u64 interval_ms);

  void write_line_locked(bool done_event);

  std::FILE* file_ = nullptr;
  std::mutex mutex_;
  HeartbeatState state_;
  u64 session_start_done_ = 0;  ///< `done` at create() (resumed records)
  u64 interval_ms_ = 0;
  bool finished_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point last_beat_;
};

}  // namespace gfi::obs
