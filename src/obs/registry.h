// Campaign-wide metrics registry: named counters, gauges, and latency
// histograms, cheap enough to update from every injection worker thread.
//
// Design: handle acquisition (counter()/gauge()/histogram()) takes the
// registry mutex once and returns a stable reference; the hot-path update on
// that handle is a single relaxed atomic RMW (counters/gauges) or a short
// per-histogram critical section (latency observations, which sit next to a
// multi-millisecond simulation anyway). Instruments live for the life of the
// registry, so handles can be cached across a whole campaign.
//
// A Snapshot is a plain copyable value: it serializes to a single JSON
// object for `gpufi campaign --metrics-out=...` artifacts and merges
// across shards the same way journals do (counters add, gauges take the
// last-written value, histograms fold bin-by-bin with Chan-style moment
// combination via stats::RunningStats::merge).
#pragma once

#include <atomic>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/stats.h"
#include "common/types.h"

namespace gfi::obs {

/// Monotonic event count. Relaxed atomics: totals are read only at
/// snapshot/quiescent points, never used for synchronization.
class Counter {
 public:
  void inc(u64 n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] u64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<u64> value_{0};
};

/// Last-written instantaneous value (queue depth, progress fraction, ...).
class Gauge {
 public:
  void set(f64 v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] f64 value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<f64> value_{0.0};
};

/// Latency distribution: fixed-bin histogram (common/histogram.h) plus
/// Welford running moments (common/stats.h), updated together under one
/// mutex so snapshots are internally consistent.
class LatencyHistogram {
 public:
  LatencyHistogram(f64 lo, f64 hi, std::size_t bins)
      : histogram_(lo, hi, bins) {}

  void observe(f64 value) {
    std::lock_guard<std::mutex> lock(mutex_);
    histogram_.add(value);
    if (!std::isnan(value)) stats_.add(value);
  }

  /// Consistent (histogram, moments) copy.
  struct Sample {
    Histogram histogram;
    stats::RunningStats stats;
  };
  [[nodiscard]] Sample sample() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return {histogram_, stats_};
  }

 private:
  mutable std::mutex mutex_;
  Histogram histogram_;
  stats::RunningStats stats_;
};

/// Point-in-time copy of a registry, detached from the live instruments.
struct Snapshot {
  struct HistogramSnapshot {
    f64 lo = 0.0;
    f64 hi = 0.0;
    std::vector<f64> bin_counts;
    f64 dropped = 0.0;
    stats::RunningStats stats;
  };

  std::map<std::string, u64> counters;
  std::map<std::string, f64> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  /// Folds `other` in: counters add, gauges keep the other's value when this
  /// snapshot lacks the name (shard gauges are per-shard, last one wins
  /// otherwise), histograms with identical bounds fold bin-by-bin.
  void merge(const Snapshot& other);

  /// One pretty-printed JSON object (counters/gauges/histograms sections).
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Process-wide default used when a campaign is not handed a registry.
  static Registry& global();

  /// Returns the instrument registered under `name`, creating it on first
  /// use. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `lo`/`hi`/`bins` apply on first registration only.
  LatencyHistogram& histogram(const std::string& name, f64 lo, f64 hi,
                              std::size_t bins);

  [[nodiscard]] Snapshot snapshot() const;

  /// Drops every instrument (tests).
  void clear();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

}  // namespace gfi::obs
