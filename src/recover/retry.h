// Trap-and-retry relaunch: the recovery a real driver stack performs when a
// kernel dies with an ECC DBE / illegal-address Xid or is killed by the
// watchdog — tear the context down, restore application state, relaunch.
//
// The executor checkpoints the device before the first attempt
// (Device::snapshot()), runs the caller's attempt callback, and while the
// attempt reports a trap, restores the checkpoint and reruns it, up to
// `max_retries` extra attempts. Whether the retry sees the same fault again
// is the caller's business (FaultPersistence): the executor only guarantees
// that every attempt starts from bit-identical device state.
#pragma once

#include <functional>

#include "common/status.h"
#include "common/types.h"
#include "sassim/device.h"
#include "sassim/trap.h"

namespace gfi::recover {

struct RetryPolicy {
  /// Extra attempts after the first; 0 disables recovery entirely (no
  /// snapshot is taken and the first attempt's result stands).
  u32 max_retries = 0;
};

/// What one attempt (launch + result check) reported back.
struct Attempt {
  /// A fired trap marks the attempt as detected-bad and triggers a retry.
  /// Silent corruption must NOT be reported here — nothing detected it.
  sim::Trap trap;
  u64 dyn_instrs = 0;  ///< dynamic warp instructions this attempt cost
};

struct RetryResult {
  sim::Trap first_trap;  ///< attempt 0's trap (kNone if it ran clean)
  sim::Trap last_trap;   ///< final attempt's trap (kNone = ended clean)
  u32 attempts = 1;      ///< total attempts run (1 = no retry needed)
  u64 total_dyn_instrs = 0;  ///< summed over all attempts

  /// The first attempt trapped and a retry ran clean.
  [[nodiscard]] bool recovered() const {
    return first_trap.fired() && !last_trap.fired();
  }
  /// Every allowed attempt trapped.
  [[nodiscard]] bool gave_up() const { return last_trap.fired(); }
};

/// Runs `attempt(0)`, then restore+retry while the attempt traps and budget
/// remains. The callback receives the attempt index (0 = original run) so a
/// caller modeling a stuck-at fault can re-arm it on every attempt.
using AttemptFn = std::function<Result<Attempt>(u32 attempt)>;
Result<RetryResult> run_with_retry(sim::Device& device,
                                   const RetryPolicy& policy,
                                   const AttemptFn& attempt);

}  // namespace gfi::recover
