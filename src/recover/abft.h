// Algorithm-based fault tolerance (ABFT) workload variants: the kernel
// carries its own checksum and traps on mismatch, converting would-be SDCs
// into DUEs that the retry executor can then recover (Huang & Abraham's
// checksum GEMM, as revived for ML accelerators by MPGemmFI and the SDC
// literature).
//
// Each variant recomputes its result's checksum a second, structurally
// different way and compares in-kernel before the host ever consumes the
// output; a mismatch raises a deliberate illegal-address trap (the same
// containment idiom as harden/swift.h):
//   gemm_abft    per-row output checksum vs dot(A-row, column-sums-of-B)
//   reduce_abft  shared-memory tree sum vs shared atomic-add sum (exact)
//   spmv_abft    per-CTA sum of y vs dot(per-CTA column sums of A, x)
//
// Coverage is the textbook ABFT envelope: faults that corrupt the output
// past the checksum tolerance are caught; sub-tolerance numerical nudges
// and faults that corrupt both checksum paths identically still escape.
#pragma once

#include <memory>

#include "workloads/workload.h"

namespace gfi::recover {

std::unique_ptr<wl::Workload> make_gemm_abft();
std::unique_ptr<wl::Workload> make_reduce_abft();
std::unique_ptr<wl::Workload> make_spmv_abft();

/// Registers gemm_abft / reduce_abft / spmv_abft in the workload registry
/// (idempotent), mirroring harden::register_hardened_workloads().
void register_abft_workloads();

}  // namespace gfi::recover
