#include "recover/abft.h"

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "sassim/kernel_builder.h"
#include "workloads/kernels_common.h"
#include "workloads/util.h"

namespace gfi::recover {
namespace {

using sim::AtomKind;
using sim::CmpOp;
using sim::Device;
using sim::KernelBuilder;
using sim::Operand;
using sim::Program;
using sim::ShflKind;
using sim::ShiftKind;
using sim::SpecialReg;
using wl::LaunchSpec;
using wl::Workload;

// Squared checksum tolerance |result - checksum|^2 > kAbsTol2 + kRelTol2*c^2,
// i.e. ~1e-2 absolute + ~1e-3 relative. Two orders of magnitude above the
// FP32 reassociation noise of these problem sizes (so the golden run never
// trips) while still catching any exponent- or sign-class corruption.
constexpr f32 kAbsTol2 = 1e-4f;
constexpr f32 kRelTol2 = 1e-6f;

/// @P(pred) STG [RZ] — a detected checksum mismatch becomes an
/// illegal-address DUE before the corrupt result escapes (swift.h idiom).
void emit_trap_if(KernelBuilder& b, u8 pred, u16 src_reg) {
  b.stg(sim::kRegZ, src_reg);
  b.guard_last(pred);
}

/// Emits the lane-0 tolerance compare: traps when
/// (sum - chk)^2 > kAbsTol2 + kRelTol2 * chk^2. Clobbers t0..t2 and `pred`.
void emit_checksum_compare(KernelBuilder& b, u16 sum, u16 chk, u16 t0, u16 t1,
                           u16 t2, u8 pred) {
  b.ffma_f32(t0, Operand::reg(chk), Operand::imm_f32(-1.0f),
             Operand::reg(sum));                       // d = sum - chk
  b.fmul_f32(t1, Operand::reg(t0), Operand::reg(t0));  // d^2
  b.fmul_f32(t2, Operand::reg(chk), Operand::reg(chk));
  b.ffma_f32(t2, Operand::reg(t2), Operand::imm_f32(kRelTol2),
             Operand::imm_f32(kAbsTol2));              // tol^2
  b.fsetp(CmpOp::kGt, pred, Operand::reg(t1), Operand::reg(t2));
  emit_trap_if(b, pred, t0);
}

// ---------------------------------------------------------------- gemm ----

/// Checksum GEMM: one CTA (one warp) per row of C. Each lane computes one
/// element, the warp shuffle-reduces the row sum, and lane 0 compares it
/// against dot(A[row,:], bsum) where bsum[k] = sum_j B[k][j] is precomputed
/// on the host — the classic row-checksum ABFT identity
/// sum_j C[row][j] = sum_k A[row][k] * bsum[k].
class GemmAbft final : public Workload {
 public:
  static constexpr u32 kDim = 32;  // M = N = K; one warp covers a row

  GemmAbft()
      : name_("gemm_abft"),
        a_(wl::random_f32(kDim * kDim, 0xAAAA)),
        b_(wl::random_f32(kDim * kDim, 0xBBBB)),
        program_(build()) {
    bsum_.resize(kDim);
    for (u32 k = 0; k < kDim; ++k) {
      f32 sum = 0.0f;
      for (u32 j = 0; j < kDim; ++j) sum += b_[k * kDim + j];
      bsum_[k] = sum;
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto a = device.malloc_n<f32>(a_.size());
    auto b = device.malloc_n<f32>(b_.size());
    auto c = device.malloc_n<f32>(kDim * kDim);
    auto bsum = device.malloc_n<f32>(bsum_.size());
    for (const auto* r : {&a, &b, &c, &bsum}) {
      if (!r->is_ok()) return r->status();
    }
    a_dev_ = a.value();
    b_dev_ = b.value();
    c_dev_ = c.value();
    bsum_dev_ = bsum.value();
    if (auto s = device.to_device<f32>(a_dev_, a_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(b_dev_, b_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(bsum_dev_, bsum_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kDim);
    spec.grid = Dim3(kDim);
    spec.params = {a_dev_, b_dev_, c_dev_, bsum_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(kDim * kDim);
    for (u32 row = 0; row < kDim; ++row) {
      for (u32 col = 0; col < kDim; ++col) {
        f32 acc = 0.0f;
        for (u32 k = 0; k < kDim; ++k) {
          acc = std::fmaf(a_[row * kDim + k], b_[k * kDim + col], acc);
        }
        want[row * kDim + col] = acc;
      }
    }
    return wl::fetch_and_check<f32>(
        device, c_dev_, want.size(), [&](std::span<const f32> got) {
          return wl::compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("gemm_abft");
    b.s2r(0, SpecialReg::kTidX);    // col
    b.s2r(1, SpecialReg::kCtaidX);  // row
    b.ldc_u64(4, 0);   // A
    b.ldc_u64(6, 1);   // B
    b.ldc_u64(8, 2);   // C
    b.ldc_u64(10, 3);  // bsum
    b.imul_u32(2, Operand::reg(1), Operand::imm_u(kDim));  // row*K

    // C[row][col] = dot(A[row,:], B[:,col])
    b.mov_f32(12, 0.0f);
    b.mov_u32(13, Operand::imm_u(0));
    b.uniform_loop(13, Operand::imm_u(kDim), 1, [&] {
      b.iadd_u32(14, Operand::reg(2), Operand::reg(13));
      b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(4));
      b.ldg(19, 16);
      b.imad_u32(14, Operand::reg(13), Operand::imm_u(kDim), Operand::reg(0));
      b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(6));
      b.ldg(20, 16);
      b.ffma_f32(12, Operand::reg(19), Operand::reg(20), Operand::reg(12));
    });
    b.iadd_u32(14, Operand::reg(2), Operand::reg(0));
    b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(8));
    b.stg(16, 12);

    // Row sum of C via warp shuffle reduction (lane 0 ends with the total).
    b.mov_u32(21, Operand::reg(12));
    for (u32 delta = kDim / 2; delta > 0; delta >>= 1) {
      b.shfl(ShflKind::kDown, 22, 21, Operand::imm_u(delta));
      b.fadd_f32(21, Operand::reg(21), Operand::reg(22));
    }

    // Reference checksum chk = dot(A[row,:], bsum), redundantly on every
    // lane — a second dataflow, so a fault rarely corrupts both equally.
    b.mov_f32(23, 0.0f);
    b.mov_u32(13, Operand::imm_u(0));
    b.uniform_loop(13, Operand::imm_u(kDim), 1, [&] {
      b.iadd_u32(14, Operand::reg(2), Operand::reg(13));
      b.imad_wide(16, Operand::reg(14), Operand::imm_u(4), Operand::reg(4));
      b.ldg(19, 16);
      b.imad_wide(16, Operand::reg(13), Operand::imm_u(4), Operand::reg(10));
      b.ldg(20, 16);
      b.ffma_f32(23, Operand::reg(19), Operand::reg(20), Operand::reg(23));
    });

    b.s2r(14, SpecialReg::kLaneId);
    b.isetp(CmpOp::kEq, 0, Operand::reg(14), Operand::imm_u(0));
    b.if_then(0, false,
              [&] { emit_checksum_compare(b, 21, 23, 25, 26, 27, 2); });
    b.exit_();
    return wl::must_build(b);
  }

  std::string name_;
  std::vector<f32> a_;
  std::vector<f32> b_;
  std::vector<f32> bsum_;
  u64 a_dev_ = 0, b_dev_ = 0, c_dev_ = 0, bsum_dev_ = 0;
  Program program_;
};

// -------------------------------------------------------------- reduce ----

/// Dual-path integer reduction: every block accumulates its partial sums
/// both through the shared-memory tree and through a shared atomic counter;
/// thread 0 requires exact agreement before committing to the global sum.
class ReduceAbft final : public Workload {
 public:
  static constexpr u32 kBlock = 128;
  static constexpr u32 kGrid = 4;
  static constexpr u32 kPerThread = 4;
  /// Byte offset of the atomic checksum slot, past the tree scratch.
  static constexpr u32 kChkSlot = kBlock * 4;

  ReduceAbft()
      : name_("reduce_abft"),
        n_(kBlock * kGrid * kPerThread),
        x_(wl::random_u32(n_, 0x5EED, 1u << 16)),
        program_(build()) {}

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }

  Result<LaunchSpec> setup(Device& device) override {
    auto x = device.malloc_n<u32>(n_);
    auto out = device.malloc_n<u32>(1);
    if (!x.is_ok()) return x.status();
    if (!out.is_ok()) return out.status();
    x_dev_ = x.value();
    out_dev_ = out.value();
    if (auto s = device.to_device<u32>(x_dev_, x_); !s.is_ok()) return s;
    const u32 zero = 0;
    if (auto s = device.to_device<u32>(out_dev_, std::span<const u32>(&zero, 1));
        !s.is_ok()) {
      return s;
    }

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {x_dev_, out_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    u32 want = 0;
    for (u32 v : x_) want += v;
    std::vector<u32> expect = {want};
    return wl::fetch_and_check<u32>(
        device, out_dev_, 1,
        [&](std::span<const u32> got) { return wl::compare_u32(got, expect); });
  }

 private:
  Program build() {
    KernelBuilder b("reduce_abft");
    wl::emit_global_tid_x(b, 0);  // R0 = gid (clobbers R1, R2)
    b.s2r(3, SpecialReg::kTidX);
    b.s2r(1, SpecialReg::kNtidX);
    b.s2r(2, SpecialReg::kNctaidX);
    b.imul_u32(4, Operand::reg(1), Operand::reg(2));  // total threads
    b.ldc_u64(6, 0);  // x
    b.ldc_u64(8, 1);  // out
    b.set_shared_bytes(kChkSlot + 4);

    // Thread 0 zeroes the atomic checksum slot.
    b.mov_u32(20, Operand::imm_u(kChkSlot));
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.mov_u32(21, Operand::imm_u(0));
      b.sts(20, 21);
    });
    b.bar();

    // Grid-stride partial sum.
    b.mov_u32(10, Operand::imm_u(0));
    b.mov_u32(11, Operand::imm_u(0));
    b.uniform_loop(11, Operand::imm_u(kPerThread), 1, [&] {
      b.imad_u32(12, Operand::reg(11), Operand::reg(4), Operand::reg(0));
      b.imad_wide(14, Operand::reg(12), Operand::imm_u(4), Operand::reg(6));
      b.ldg(16, 14);
      b.iadd_u32(10, Operand::reg(10), Operand::reg(16));
    });

    // Path 1: shared-memory tree. Path 2: shared atomic adds.
    b.shf(ShiftKind::kLeft, 17, Operand::reg(3), Operand::imm_u(2));
    b.sts(17, 10);
    b.atoms(AtomKind::kAdd, sim::kRegZ, 20, Operand::reg(10));
    b.bar();
    for (u32 stride = kBlock / 2; stride > 0; stride >>= 1) {
      b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(stride));
      b.if_then(0, false, [&] {
        b.lds(18, 17, 0);
        b.lds(19, 17, static_cast<u64>(stride) * 4);
        b.iadd_u32(18, Operand::reg(18), Operand::reg(19));
        b.sts(17, 18);
      });
      b.bar();
    }

    // Thread 0: both paths must agree bit-for-bit (integer, order-free)
    // before the block's partial reaches global memory.
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.lds(18, 17, 0);  // tree result (tid 0 -> shared[0])
      b.lds(19, 20, 0);  // atomic result
      b.isetp(CmpOp::kNe, 2, Operand::reg(18), Operand::reg(19));
      emit_trap_if(b, 2, 18);
      b.atomg(AtomKind::kAdd, sim::kRegZ, 8, Operand::reg(18));
    });
    b.exit_();
    return wl::must_build(b);
  }

  std::string name_;
  u32 n_;
  std::vector<u32> x_;
  u64 x_dev_ = 0, out_dev_ = 0;
  Program program_;
};

// ---------------------------------------------------------------- spmv ----

/// Checksum SpMV (CSR, row per thread): each CTA tree-reduces the y values
/// it produced and thread 0 compares against dot(colsum, x), where
/// colsum[j] = sum of A[row][j] over the CTA's rows is precomputed on the
/// host — the column-checksum identity sum_rows y = (colsum) . x.
class SpmvAbft final : public Workload {
 public:
  static constexpr u32 kRows = 512;
  static constexpr u32 kCols = 256;
  static constexpr u32 kBlock = 256;
  static constexpr u32 kGrid = kRows / kBlock;

  SpmvAbft() : name_("spmv_abft"), program_(build()) {
    Rng rng(0x5B37);
    row_ptr_.push_back(0);
    for (u32 row = 0; row < kRows; ++row) {
      const u32 nnz = 1 + static_cast<u32>(rng.next_below(15));
      for (u32 e = 0; e < nnz; ++e) {
        col_idx_.push_back(static_cast<u32>(rng.next_below(kCols)));
        vals_.push_back(rng.next_float(-1.0f, 1.0f));
      }
      row_ptr_.push_back(static_cast<u32>(col_idx_.size()));
    }
    x_ = wl::random_f32(kCols, 0x5137);
    colsum_.assign(static_cast<std::size_t>(kGrid) * kCols, 0.0f);
    for (u32 row = 0; row < kRows; ++row) {
      const u32 cta = row / kBlock;
      for (u32 e = row_ptr_[row]; e < row_ptr_[row + 1]; ++e) {
        colsum_[cta * kCols + col_idx_[e]] += vals_[e];
      }
    }
  }

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] const Program& program() const override { return program_; }
  [[nodiscard]] f64 tolerance() const override { return 1e-5; }

  Result<LaunchSpec> setup(Device& device) override {
    auto rp = device.malloc_n<u32>(row_ptr_.size());
    auto ci = device.malloc_n<u32>(col_idx_.size());
    auto va = device.malloc_n<f32>(vals_.size());
    auto xv = device.malloc_n<f32>(x_.size());
    auto yv = device.malloc_n<f32>(kRows);
    auto cs = device.malloc_n<f32>(colsum_.size());
    for (const auto* r : {&rp, &ci, &va, &xv, &yv, &cs}) {
      if (!r->is_ok()) return r->status();
    }
    rp_dev_ = rp.value();
    ci_dev_ = ci.value();
    va_dev_ = va.value();
    x_dev_ = xv.value();
    y_dev_ = yv.value();
    cs_dev_ = cs.value();
    if (auto s = device.to_device<u32>(rp_dev_, row_ptr_); !s.is_ok()) return s;
    if (auto s = device.to_device<u32>(ci_dev_, col_idx_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(va_dev_, vals_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(x_dev_, x_); !s.is_ok()) return s;
    if (auto s = device.to_device<f32>(cs_dev_, colsum_); !s.is_ok()) return s;

    LaunchSpec spec;
    spec.block = Dim3(kBlock);
    spec.grid = Dim3(kGrid);
    spec.params = {rp_dev_, ci_dev_, va_dev_, x_dev_, y_dev_, cs_dev_};
    return spec;
  }

  Result<Checked> check(Device& device) override {
    std::vector<f32> want(kRows);
    for (u32 row = 0; row < kRows; ++row) {
      f32 acc = 0.0f;
      for (u32 e = row_ptr_[row]; e < row_ptr_[row + 1]; ++e) {
        acc = std::fmaf(vals_[e], x_[col_idx_[e]], acc);
      }
      want[row] = acc;
    }
    return wl::fetch_and_check<f32>(
        device, y_dev_, kRows, [&](std::span<const f32> got) {
          return wl::compare_f32(got, want, tolerance());
        });
  }

 private:
  Program build() {
    KernelBuilder b("spmv_abft");
    wl::emit_global_tid_x(b, 0);  // R0 = row (grid exactly covers kRows)
    b.s2r(3, SpecialReg::kTidX);
    b.ldc_u64(4, 0);   // row_ptr
    b.ldc_u64(6, 1);   // col_idx
    b.ldc_u64(8, 2);   // vals
    b.ldc_u64(10, 3);  // x
    b.ldc_u64(12, 4);  // y
    b.set_shared_bytes(kBlock * 4);

    // y[row] = dot(A[row,:], x) over the row's CSR entries. The trip count
    // is warp-divergent, and unlike spmv the kernel keeps running past the
    // loop (shared tree + barriers), so the loop needs an explicit SSY/SYNC
    // reconvergence wrapper: without it, early-finishing lanes would hit the
    // CTA barrier while their warp mates are still parked on the divergence
    // stack.
    b.imad_wide(14, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
    b.ldg(16, 14, 0);  // start
    b.ldg(17, 14, 4);  // end
    b.mov_f32(18, 0.0f);
    const KernelBuilder::Label l_reconv = b.new_label();
    b.ssy(l_reconv);
    b.uniform_loop(16, Operand::reg(17), 1, [&] {
      b.imad_wide(20, Operand::reg(16), Operand::imm_u(4), Operand::reg(6));
      b.ldg(22, 20);  // col
      b.imad_wide(20, Operand::reg(16), Operand::imm_u(4), Operand::reg(8));
      b.ldg(23, 20);  // val
      b.imad_wide(20, Operand::reg(22), Operand::imm_u(4), Operand::reg(10));
      b.ldg(24, 20);  // x[col]
      b.ffma_f32(18, Operand::reg(23), Operand::reg(24), Operand::reg(18));
    });
    b.bind(l_reconv);
    b.sync_();
    b.imad_wide(20, Operand::reg(0), Operand::imm_u(4), Operand::reg(12));
    b.stg(20, 18);

    // Tree-reduce the CTA's y values in shared memory.
    b.shf(ShiftKind::kLeft, 25, Operand::reg(3), Operand::imm_u(2));
    b.sts(25, 18);
    b.bar();
    for (u32 stride = kBlock / 2; stride > 0; stride >>= 1) {
      b.isetp(CmpOp::kLt, 0, Operand::reg(3), Operand::imm_u(stride));
      b.if_then(0, false, [&] {
        b.lds(26, 25, 0);
        b.lds(27, 25, static_cast<u64>(stride) * 4);
        b.fadd_f32(26, Operand::reg(26), Operand::reg(27));
        b.sts(25, 26);
      });
      b.bar();
    }

    // Thread 0: chk = dot(colsum[cta], x), compared against the tree total.
    b.isetp(CmpOp::kEq, 0, Operand::reg(3), Operand::imm_u(0));
    b.if_then(0, false, [&] {
      b.ldc_u64(30, 5);  // colsum
      b.s2r(22, SpecialReg::kCtaidX);
      b.imul_u32(23, Operand::reg(22), Operand::imm_u(kCols));
      b.mov_f32(28, 0.0f);
      b.mov_u32(29, Operand::imm_u(0));
      b.uniform_loop(29, Operand::imm_u(kCols), 1, [&] {
        b.iadd_u32(22, Operand::reg(23), Operand::reg(29));
        b.imad_wide(20, Operand::reg(22), Operand::imm_u(4), Operand::reg(30));
        b.ldg(24, 20);  // colsum[cta*kCols + j]
        b.imad_wide(20, Operand::reg(29), Operand::imm_u(4), Operand::reg(10));
        b.ldg(27, 20);  // x[j]
        b.ffma_f32(28, Operand::reg(24), Operand::reg(27), Operand::reg(28));
      });
      b.lds(26, 25, 0);  // tree total (tid 0 -> shared[0])
      emit_checksum_compare(b, 26, 28, 32, 33, 34, 2);
    });
    b.exit_();
    return wl::must_build(b);
  }

  std::string name_;
  std::vector<u32> row_ptr_;
  std::vector<u32> col_idx_;
  std::vector<f32> vals_;
  std::vector<f32> x_;
  std::vector<f32> colsum_;
  u64 rp_dev_ = 0, ci_dev_ = 0, va_dev_ = 0, x_dev_ = 0, y_dev_ = 0,
      cs_dev_ = 0;
  Program program_;
};

}  // namespace

std::unique_ptr<wl::Workload> make_gemm_abft() {
  return std::make_unique<GemmAbft>();
}
std::unique_ptr<wl::Workload> make_reduce_abft() {
  return std::make_unique<ReduceAbft>();
}
std::unique_ptr<wl::Workload> make_spmv_abft() {
  return std::make_unique<SpmvAbft>();
}

void register_abft_workloads() {
  static const bool done = [] {
    wl::register_workload("gemm_abft", make_gemm_abft);
    wl::register_workload("reduce_abft", make_reduce_abft);
    wl::register_workload("spmv_abft", make_spmv_abft);
    return true;
  }();
  (void)done;
}

}  // namespace gfi::recover
