#include "recover/retry.h"

namespace gfi::recover {

Result<RetryResult> run_with_retry(sim::Device& device,
                                   const RetryPolicy& policy,
                                   const AttemptFn& attempt) {
  sim::GlobalMemory::Snapshot snapshot;
  if (policy.max_retries > 0) snapshot = device.snapshot();

  auto first = attempt(0);
  if (!first.is_ok()) return first.status();

  RetryResult result;
  result.first_trap = first.value().trap;
  result.last_trap = first.value().trap;
  result.total_dyn_instrs = first.value().dyn_instrs;

  for (u32 retry = 1;
       retry <= policy.max_retries && result.last_trap.fired(); ++retry) {
    device.restore(snapshot);
    auto rerun = attempt(retry);
    if (!rerun.is_ok()) return rerun.status();
    result.last_trap = rerun.value().trap;
    result.total_dyn_instrs += rerun.value().dyn_instrs;
    ++result.attempts;
  }
  return result;
}

}  // namespace gfi::recover
