// custom_kernel: author your own SASS-like kernel with KernelBuilder, run
// it on the simulated H100, disassemble it, profile its instruction mix,
// and strike a fault into it by hand with the injector — the full public
// API surface in ~100 lines.
//
//   $ ./examples/custom_kernel
#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/arch.h"
#include "fi/injector.h"
#include "sassim/device.h"
#include "sassim/kernel_builder.h"
#include "sassim/profiler.h"

using namespace gfi;
using sim::Operand;

int main() {
  // Kernel: out[i] = relu(a * in[i] + b) over one 256-thread block.
  sim::KernelBuilder b("relu_affine");
  b.s2r(0, sim::SpecialReg::kTidX);
  b.ldc_u64(2, 0);   // in
  b.ldc_u64(4, 1);   // out
  b.ldc_u32(6, 2);   // a (f32 bits)
  b.ldc_u32(7, 3);   // b (f32 bits)
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(2));
  b.ldg(12, 8);
  b.ffma_f32(13, Operand::reg(6), Operand::reg(12), Operand::reg(7));
  b.fmnmx_f32(14, Operand::reg(13), Operand::imm_f32(0.0f), sim::MinMax::kMax);
  b.imad_wide(8, Operand::reg(0), Operand::imm_u(4), Operand::reg(4));
  b.stg(8, 14);
  b.exit_();

  auto program = b.build();
  if (!program.is_ok()) {
    std::fprintf(stderr, "%s\n", program.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", program.value().disassemble().c_str());

  // Run it on the H100 model.
  sim::Device device(arch::h100());
  const u32 n = 256;
  auto in = device.malloc_n<f32>(n);
  auto out = device.malloc_n<f32>(n);
  std::vector<f32> host(n);
  for (u32 i = 0; i < n; ++i) host[i] = static_cast<f32>(i) - 128.0f;
  (void)device.to_device<f32>(in.value(), host);

  const u64 params[] = {in.value(), out.value(), f32_bits(0.5f),
                        f32_bits(3.0f)};

  sim::ProfilerHook profiler;
  sim::LaunchOptions options;
  options.hooks.push_back(&profiler);
  auto launch = device.launch(program.value(), Dim3(1), Dim3(n), params,
                              options);
  std::printf("clean run: %llu warp instrs, %llu cycles (%.2f us on %s)\n",
              static_cast<unsigned long long>(launch.value().dyn_warp_instrs),
              static_cast<unsigned long long>(launch.value().cycles),
              launch.value().time_us(device.config()),
              device.config().name.c_str());
  for (int g = 0; g < sim::kInstrGroupCount; ++g) {
    const u64 count = profiler.profile().warp_instrs_by_group[g];
    if (count > 0) {
      std::printf("  %-9s %llu\n",
                  sim::group_name(static_cast<sim::InstrGroup>(g)),
                  static_cast<unsigned long long>(count));
    }
  }

  // Now strike the FFMA output of warp-instruction occurrence 0, lane 12,
  // sign bit — by hand, no campaign machinery.
  fi::FaultSite site;
  site.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  site.group = sim::InstrGroup::kFp32Fma;
  site.target_occurrence = 0;
  site.lane_sel = 12;
  site.bit_sel = 31;  // FP32 sign
  fi::InjectorHook injector(site, device.config());
  sim::LaunchOptions fi_options;
  fi_options.hooks.push_back(&injector);
  (void)device.launch(program.value(), Dim3(1), Dim3(n), params, fi_options);

  std::vector<f32> result(n);
  (void)device.to_host(std::span<f32>(result), out.value());
  std::printf("\ninjected sign flip at %s\n", site.to_string().c_str());
  for (u32 i = 10; i < 15; ++i) {
    const f32 want = std::fmax(0.5f * host[i] + 3.0f, 0.0f);
    std::printf("  out[%u] = %8.2f (clean would be %8.2f)%s\n", i, result[i],
                want, result[i] != want ? "   <-- corrupted" : "");
  }
  return 0;
}
