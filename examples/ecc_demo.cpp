// ecc_demo: what SECDED does, end to end.
//  1. Codec level: encode a word, flip bits, decode.
//  2. Device level: inject upsets into simulated device memory and watch a
//     kernel observe corrections (SBE), traps (DBE), or silent corruption
//     (ECC off) — the nvidia-smi view of the same events.
//
//   $ ./examples/ecc_demo
#include <cstdio>

#include "arch/arch.h"
#include "ecc/secded.h"
#include "sassim/device.h"
#include "workloads/workload.h"

using namespace gfi;

namespace {

void codec_demo() {
  std::printf("--- SECDED(72,64) codec ---\n");
  const u64 data = 0xDEADBEEFCAFEF00DULL;
  const ecc::Codeword word = ecc::encode(data);
  std::printf("data      = %016llx, check bits = %02x\n",
              static_cast<unsigned long long>(word.data), word.check);

  auto one_flip = ecc::flip_codeword_bit(word, 17);
  auto r1 = ecc::decode(one_flip);
  std::printf("flip bit 17  -> %s, recovered data %s\n",
              r1.status == ecc::DecodeStatus::kCorrectedSingle ? "corrected"
                                                               : "?!",
              r1.data == data ? "intact" : "LOST");

  auto two_flips = ecc::flip_codeword_bit(one_flip, 42);
  auto r2 = ecc::decode(two_flips);
  std::printf("flip bits 17+42 -> %s (uncorrectable, as designed)\n\n",
              r2.status == ecc::DecodeStatus::kDetectedDouble ? "detected"
                                                              : "?!");
}

void device_demo(ecc::EccMode mode) {
  std::printf("--- device memory, ECC %s ---\n", ecc::to_string(mode));
  sim::MachineConfig machine = arch::a100();
  machine.dram_ecc = mode;
  sim::Device device(machine);

  auto workload = wl::make_workload("vecadd");
  auto spec = workload->setup(device);
  if (!spec.is_ok()) return;

  // Single-bit upset in the input buffer (params[0] = input address).
  device.memory().inject_fault(spec.value().params[0] + 64, 1u << 5);

  auto launch = device.launch(workload->program(), spec.value().grid,
                              spec.value().block, spec.value().params);
  auto checked = workload->check(device);
  std::printf("1-bit upset: launch %s, SBE corrected = %llu, output %s\n",
              launch.value().ok() ? "clean" : launch.value().trap.to_string().c_str(),
              static_cast<unsigned long long>(
                  device.memory().counters().corrected_sbe),
              checked.value().result.bitwise_equal ? "bit-exact"
                                                   : "CORRUPTED");

  // Double-bit upset: trap (ECC on) or silent corruption (ECC off).
  device.memory().inject_fault(spec.value().params[0] + 128, 0b11u);
  auto launch2 = device.launch(workload->program(), spec.value().grid,
                               spec.value().block, spec.value().params);
  std::printf("2-bit upset: launch -> %s\n\n",
              launch2.value().ok() ? "completed (silently!)"
                                   : launch2.value().trap.to_string().c_str());
}

}  // namespace

int main() {
  codec_demo();
  device_demo(ecc::EccMode::kSecded);
  device_demo(ecc::EccMode::kDisabled);
  return 0;
}
