// arch_compare: the "story of two GPUs" in one program — run the same
// fault-injection campaign against the A100 and H100 machine models and
// compare outcome distributions, timing, and ECC activity side by side.
//
//   $ ./examples/arch_compare [workload] [injections]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.h"
#include "arch/arch.h"
#include "common/table.h"
#include "fi/campaign.h"
#include "sassim/simulator.h"

int main(int argc, char** argv) {
  using namespace gfi;
  const std::string workload = argc > 1 ? argv[1] : "gemm";
  const std::size_t injections =
      argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 400;

  Table outcomes("Outcome distribution: " + workload + " (IOV single-bit)");
  auto header = analysis::outcome_header();
  header[0] = "arch";
  outcomes.set_header(header);

  Table timing("Golden-run timing");
  timing.set_header({"arch", "warp instrs", "cycles", "time (us)"});

  for (arch::GpuModel model : arch::study_models()) {
    fi::CampaignConfig config;
    config.workload = workload;
    config.machine = arch::config_for(model);
    config.num_injections = injections;
    config.seed = 2025;

    auto result = fi::Campaign::run(config);
    if (!result.is_ok()) {
      std::fprintf(stderr, "%s\n", result.status().to_string().c_str());
      return 1;
    }
    const auto& campaign = result.value();
    outcomes.add_row(analysis::outcome_row(arch::model_name(model), campaign));

    sim::LaunchResult golden_time;
    golden_time.cycles = campaign.golden_cycles;
    timing.add_row({arch::model_name(model),
                    std::to_string(campaign.golden_dyn_instrs),
                    std::to_string(campaign.golden_cycles),
                    Table::fmt(golden_time.time_us(config.machine), 2)});
  }

  outcomes.print();
  std::printf("\n");
  timing.print();
  std::printf(
      "\nPer-instruction vulnerability is expected to match across the two\n"
      "GPUs (same fault, same architectural state); the H100 model finishes\n"
      "faster (more SMs, higher clock), shrinking exposure time per kernel.\n");
  return 0;
}
