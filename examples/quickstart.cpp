// Quickstart: run one fault-injection campaign — 200 single-bit IOV
// injections into the saxpy kernel on a simulated A100 — and print the
// outcome distribution.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "analysis/report.h"
#include "arch/arch.h"
#include "common/table.h"
#include "fi/campaign.h"

int main() {
  using namespace gfi;

  fi::CampaignConfig config;
  config.workload = "saxpy";
  config.machine = arch::a100();
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = 200;
  config.seed = 42;

  auto result = fi::Campaign::run(config);
  if (!result.is_ok()) {
    std::fprintf(stderr, "campaign failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  const fi::CampaignResult& campaign = result.value();

  std::printf("workload: %s on %s — %zu IOV single-bit injections\n",
              config.workload.c_str(), config.machine.name.c_str(),
              campaign.records.size());
  std::printf("golden run: %llu dynamic warp instructions, %llu cycles\n\n",
              static_cast<unsigned long long>(campaign.golden_dyn_instrs),
              static_cast<unsigned long long>(campaign.golden_cycles));

  Table table("Outcome distribution (95% CI)");
  table.set_header(analysis::outcome_header());
  table.add_row(analysis::outcome_row(config.workload, campaign));
  table.print();

  std::printf("\nuncorrected failure rate (SDC+DUE+Hang): %.2f%%\n",
              analysis::uncorrected_failure_rate(campaign) * 100.0);
  return 0;
}
