// Hook-free vs instrumented-path simulator throughput.
//
// The tiered dispatch architecture promises that a hook-free launch — by
// default the threaded tier: predecoded handler ids, computed-goto/switch
// dispatch, superinstruction fusion — is substantially faster than the
// instrumented inner loop it replaced. This bench measures both sides on
// the same workloads — the instrumented side via EngineTier::kInstrumented,
// which preserves the pre-refactor per-instruction semantics with an empty
// hook vector — writes BENCH_sim.json, and exits 1 when the geomean
// hook-free speedup drops below the 1.5x CI gate.
//
// --engine=instrumented|clean|threaded pins the hook-free side to one tier
// for A/B comparisons (strict parse: anything else exits 2).
//
// Measurement is noise-hardened: each workload runs several alternating
// hook-free/instrumented trials and each side keeps its best trial rate, so
// frequency drift or a transient neighbor hits both sides alike instead
// of deciding the gate.
//
// GFI_BENCH_MIN_MS=<n> sets the per-workload time floor (default 300).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/simd.h"
#include "sassim/device.h"
#include "sassim/exec_threaded.h"
#include "workloads/workload.h"

namespace {

using namespace gfi;

constexpr double kGateSpeedup = 1.5;
constexpr int kTrials = 3;

// The empty-hook inner-loop throughput of the engine before the decode/
// execute split (bench_perf_sim, gemm on the A100 model, this machine
// class): the acceptance reference the hook-free path must beat by >= 2x.
constexpr double kPreRefactorGemmRate = 2.168e6;

double min_ms() {
  if (const char* env = std::getenv("GFI_BENCH_MIN_MS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<double>(parsed);
  }
  return 300.0;
}

struct Bench {
  sim::Device device;
  std::unique_ptr<wl::Workload> workload;
  wl::LaunchSpec spec;

  explicit Bench(const std::string& name, const sim::MachineConfig& machine)
      : device(machine), workload(wl::make_workload(name)) {
    if (!workload) {
      std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
      std::exit(1);
    }
    auto setup = workload->setup(device);
    if (!setup.is_ok()) {
      std::fprintf(stderr, "setup failed for '%s': %s\n", name.c_str(),
                   setup.status().to_string().c_str());
      std::exit(1);
    }
    spec = setup.value();
  }

  /// One timed window of hook-free launches on `tier`; returns
  /// warp-instrs/sec.
  double timed_window(sim::EngineTier tier, double window_s) {
    sim::LaunchOptions options;
    options.engine = tier;
    u64 instrs = 0;
    u64 launches = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      auto launch = device.launch(workload->program(), spec.grid, spec.block,
                                  spec.params, options);
      if (!launch.is_ok() || !launch.value().ok()) {
        std::fprintf(stderr, "launch failed\n");
        std::exit(1);
      }
      instrs += launch.value().dyn_warp_instrs;
      ++launches;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
    } while (elapsed < window_s || launches < 2);
    return static_cast<double>(instrs) / elapsed;
  }
};

struct PathRates {
  double clean = 0.0;  ///< the hook-free side (selected tier)
  double instrumented = 0.0;

  [[nodiscard]] double speedup() const {
    return instrumented > 0.0 ? clean / instrumented : 0.0;
  }
};

PathRates measure(const std::string& name, const sim::MachineConfig& machine,
                  sim::EngineTier tier) {
  Bench bench(name, machine);
  (void)bench.timed_window(tier, 0.0);  // warm-up: decode cache + allocator
  const double window_s = min_ms() / 1e3 / (2 * kTrials);
  PathRates best;
  for (int trial = 0; trial < kTrials; ++trial) {
    best.clean = std::max(best.clean, bench.timed_window(tier, window_s));
    best.instrumented = std::max(
        best.instrumented,
        bench.timed_window(sim::EngineTier::kInstrumented, window_s));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  sim::EngineTier tier = sim::EngineTier::kAuto;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--engine=", 9) == 0) {
      const char* value = arg + 9;
      if (std::strcmp(value, "instrumented") == 0) {
        tier = sim::EngineTier::kInstrumented;
      } else if (std::strcmp(value, "clean") == 0) {
        tier = sim::EngineTier::kClean;
      } else if (std::strcmp(value, "threaded") == 0) {
        tier = sim::EngineTier::kThreaded;
      } else {
        std::fprintf(stderr,
                     "invalid --engine '%s' (instrumented|clean|threaded)\n",
                     value);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return 2;
    }
  }

  // gemm dominates (deep FP inner loop); the others add divergence-, guard-,
  // and memory-heavy instruction mixes so neither path gets a shape it
  // happens to like.
  const std::vector<std::string> workloads = {"gemm", "scan", "reduce_u32",
                                              "saxpy"};
  const sim::MachineConfig machine = arch::a100();
  const char* tier_name = sim::engine_tier_name(
      tier == sim::EngineTier::kAuto ? sim::EngineTier::kThreaded : tier);

  std::printf("Simulator path throughput (A100 model, hook-free launches)\n");
  std::printf("simd backend: %s, dispatch backend: %s, engine: %s\n",
              simd::backend(), sim::exec::dispatch_backend(), tier_name);
  std::printf("%-12s %15s %15s %9s\n", "workload", "hook-free (wi/s)",
              "instrumented", "speedup");

  std::string rows;
  double log_speedup_sum = 0.0;
  double gemm_clean = 0.0;
  for (const std::string& name : workloads) {
    const PathRates rates = measure(name, machine, tier);
    std::printf("%-12s %15.0f %15.0f %8.2fx\n", name.c_str(), rates.clean,
                rates.instrumented, rates.speedup());
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"workload\": \"%s\", \"clean_warp_instrs_per_sec\": "
                  "%.0f, \"instrumented_warp_instrs_per_sec\": %.0f, "
                  "\"speedup\": %.3f},\n",
                  name.c_str(), rates.clean, rates.instrumented,
                  rates.speedup());
    rows += row;
    log_speedup_sum += std::log(rates.speedup());
    if (name == "gemm") gemm_clean = rates.clean;
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);  // trailing comma

  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(workloads.size()));
  const double vs_pre_refactor = gemm_clean / kPreRefactorGemmRate;
  std::printf("%-12s %31s %8.2fx  (gate: >= %.1fx)\n", "geomean", "",
              geomean, kGateSpeedup);
  std::printf("gemm hook-free path vs pre-refactor empty-hook loop: %.2fx\n",
              vs_pre_refactor);

  FILE* out = std::fopen("BENCH_sim.json", "w");
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_sim.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"sim_paths\",\n  \"arch\": \"%s\",\n"
               "  \"simd\": \"%s\",\n"
               "  \"dispatch\": \"%s\",\n"
               "  \"engine\": \"%s\",\n"
               "  \"workloads\": [\n%s  ],\n"
               "  \"geomean_speedup\": %.3f,\n"
               "  \"gate_speedup\": %.1f,\n"
               "  \"gemm_clean_warp_instrs_per_sec\": %.0f,\n"
               "  \"gemm_pre_refactor_empty_hook_warp_instrs_per_sec\": %.0f,\n"
               "  \"gemm_clean_speedup_vs_pre_refactor\": %.3f\n}\n",
               machine.name.c_str(), simd::backend(),
               sim::exec::dispatch_backend(), tier_name, rows.c_str(), geomean,
               kGateSpeedup,
               gemm_clean, kPreRefactorGemmRate, vs_pre_refactor);
  std::fclose(out);

  if (geomean < kGateSpeedup) {
    std::fprintf(stderr,
                 "FAIL: hook-free speedup %.2fx below the %.1fx gate\n",
                 geomean, kGateSpeedup);
    return 1;
  }
  std::printf("OK: hook-free path is %.2fx the instrumented inner loop\n",
              geomean);
  return 0;
}
