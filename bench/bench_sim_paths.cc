// Clean-path vs instrumented-path simulator throughput.
//
// The split decode/execute refactor promises that a hook-free launch (the
// clean path: no InstrContext, no hook walks, single guard-mask pass) is
// substantially faster than the instrumented inner loop it replaced. This
// bench measures both paths on the same workloads — the instrumented side
// via LaunchOptions::force_instrumented, which preserves the pre-refactor
// per-instruction semantics with an empty hook vector — writes
// BENCH_sim.json, and exits 1 when the geomean clean-path speedup drops
// below the 1.5x CI gate.
//
// Measurement is noise-hardened: each workload runs several alternating
// clean/instrumented trials and each path keeps its best trial rate, so
// frequency drift or a transient neighbor hits both paths alike instead
// of deciding the gate.
//
// GFI_BENCH_MIN_MS=<n> sets the per-workload time floor (default 300).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "arch/arch.h"
#include "common/simd.h"
#include "sassim/device.h"
#include "workloads/workload.h"

namespace {

using namespace gfi;

constexpr double kGateSpeedup = 1.5;
constexpr int kTrials = 3;

// The empty-hook inner-loop throughput of the engine before the decode/
// execute split (bench_perf_sim, gemm on the A100 model, this machine
// class): the acceptance reference the clean path must beat by >= 2x.
constexpr double kPreRefactorGemmRate = 2.168e6;

double min_ms() {
  if (const char* env = std::getenv("GFI_BENCH_MIN_MS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<double>(parsed);
  }
  return 300.0;
}

struct Bench {
  sim::Device device;
  std::unique_ptr<wl::Workload> workload;
  wl::LaunchSpec spec;

  explicit Bench(const std::string& name, const sim::MachineConfig& machine)
      : device(machine), workload(wl::make_workload(name)) {
    if (!workload) {
      std::fprintf(stderr, "unknown workload '%s'\n", name.c_str());
      std::exit(1);
    }
    auto setup = workload->setup(device);
    if (!setup.is_ok()) {
      std::fprintf(stderr, "setup failed for '%s': %s\n", name.c_str(),
                   setup.status().to_string().c_str());
      std::exit(1);
    }
    spec = setup.value();
  }

  /// One timed window of hook-free launches; returns warp-instrs/sec.
  double timed_window(bool force_instrumented, double window_s) {
    sim::LaunchOptions options;
    options.force_instrumented = force_instrumented;
    u64 instrs = 0;
    u64 launches = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed = 0.0;
    do {
      auto launch = device.launch(workload->program(), spec.grid, spec.block,
                                  spec.params, options);
      if (!launch.is_ok() || !launch.value().ok()) {
        std::fprintf(stderr, "launch failed\n");
        std::exit(1);
      }
      instrs += launch.value().dyn_warp_instrs;
      ++launches;
      elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
    } while (elapsed < window_s || launches < 2);
    return static_cast<double>(instrs) / elapsed;
  }
};

struct PathRates {
  double clean = 0.0;
  double instrumented = 0.0;

  [[nodiscard]] double speedup() const {
    return instrumented > 0.0 ? clean / instrumented : 0.0;
  }
};

PathRates measure(const std::string& name, const sim::MachineConfig& machine) {
  Bench bench(name, machine);
  (void)bench.timed_window(false, 0.0);  // warm-up: decode cache + allocator
  const double window_s = min_ms() / 1e3 / (2 * kTrials);
  PathRates best;
  for (int trial = 0; trial < kTrials; ++trial) {
    best.clean = std::max(best.clean, bench.timed_window(false, window_s));
    best.instrumented =
        std::max(best.instrumented, bench.timed_window(true, window_s));
  }
  return best;
}

}  // namespace

int main() {
  // gemm dominates (deep FP inner loop); the others add divergence-, guard-,
  // and memory-heavy instruction mixes so neither path gets a shape it
  // happens to like.
  const std::vector<std::string> workloads = {"gemm", "scan", "reduce_u32",
                                              "saxpy"};
  const sim::MachineConfig machine = arch::a100();

  std::printf("Simulator path throughput (A100 model, hook-free launches)\n");
  std::printf("simd backend: %s\n", simd::backend());
  std::printf("%-12s %15s %15s %9s\n", "workload", "clean (wi/s)",
              "instrumented", "speedup");

  std::string rows;
  double log_speedup_sum = 0.0;
  double gemm_clean = 0.0;
  for (const std::string& name : workloads) {
    const PathRates rates = measure(name, machine);
    std::printf("%-12s %15.0f %15.0f %8.2fx\n", name.c_str(), rates.clean,
                rates.instrumented, rates.speedup());
    char row[512];
    std::snprintf(row, sizeof(row),
                  "    {\"workload\": \"%s\", \"clean_warp_instrs_per_sec\": "
                  "%.0f, \"instrumented_warp_instrs_per_sec\": %.0f, "
                  "\"speedup\": %.3f},\n",
                  name.c_str(), rates.clean, rates.instrumented,
                  rates.speedup());
    rows += row;
    log_speedup_sum += std::log(rates.speedup());
    if (name == "gemm") gemm_clean = rates.clean;
  }
  if (!rows.empty()) rows.erase(rows.size() - 2, 1);  // trailing comma

  const double geomean =
      std::exp(log_speedup_sum / static_cast<double>(workloads.size()));
  const double vs_pre_refactor = gemm_clean / kPreRefactorGemmRate;
  std::printf("%-12s %31s %8.2fx  (gate: >= %.1fx)\n", "geomean", "",
              geomean, kGateSpeedup);
  std::printf("gemm clean path vs pre-refactor empty-hook loop: %.2fx\n",
              vs_pre_refactor);

  FILE* out = std::fopen("BENCH_sim.json", "w");
  if (!out) {
    std::fprintf(stderr, "cannot write BENCH_sim.json\n");
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"sim_paths\",\n  \"arch\": \"%s\",\n"
               "  \"simd\": \"%s\",\n"
               "  \"workloads\": [\n%s  ],\n"
               "  \"geomean_speedup\": %.3f,\n"
               "  \"gate_speedup\": %.1f,\n"
               "  \"gemm_clean_warp_instrs_per_sec\": %.0f,\n"
               "  \"gemm_pre_refactor_empty_hook_warp_instrs_per_sec\": %.0f,\n"
               "  \"gemm_clean_speedup_vs_pre_refactor\": %.3f\n}\n",
               machine.name.c_str(), simd::backend(), rows.c_str(), geomean,
               kGateSpeedup,
               gemm_clean, kPreRefactorGemmRate, vs_pre_refactor);
  std::fclose(out);

  if (geomean < kGateSpeedup) {
    std::fprintf(stderr,
                 "FAIL: clean-path speedup %.2fx below the %.1fx gate\n",
                 geomean, kGateSpeedup);
    return 1;
  }
  std::printf("OK: clean path is %.2fx the instrumented inner loop\n",
              geomean);
  return 0;
}
