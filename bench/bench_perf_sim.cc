// Performance microbenchmarks of the framework itself (google-benchmark):
// simulator instruction throughput, launch overhead, SECDED codec, and
// end-to-end injection-run throughput. These gate how large a campaign is
// practical per CPU core.
#include <benchmark/benchmark.h>

#include "arch/arch.h"
#include "ecc/secded.h"
#include "fi/campaign.h"
#include "sassim/device.h"
#include "workloads/workload.h"

namespace {

using namespace gfi;

void BM_SimulatorThroughput(benchmark::State& state) {
  auto workload = wl::make_workload("gemm");
  sim::Device device(arch::a100());
  auto spec = workload->setup(device);
  u64 instrs = 0;
  for (auto _ : state) {
    auto launch = device.launch(workload->program(), spec.value().grid,
                                spec.value().block, spec.value().params);
    instrs += launch.value().dyn_warp_instrs;
  }
  state.counters["warp_instr/s"] = benchmark::Counter(
      static_cast<double>(instrs), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

void BM_LaunchOverhead(benchmark::State& state) {
  // Smallest possible kernel: measures per-launch fixed cost.
  auto workload = wl::make_workload("vecadd");
  sim::Device device(arch::a100());
  auto spec = workload->setup(device);
  for (auto _ : state) {
    benchmark::DoNotOptimize(device.launch(workload->program(),
                                           spec.value().grid,
                                           spec.value().block,
                                           spec.value().params));
  }
}
BENCHMARK(BM_LaunchOverhead)->Unit(benchmark::kMicrosecond);

void BM_SecdedEncodeDecode(benchmark::State& state) {
  u64 data = 0x0123456789ABCDEFULL;
  for (auto _ : state) {
    const auto word = ecc::encode(data);
    benchmark::DoNotOptimize(ecc::decode(word));
    data = data * 6364136223846793005ULL + 1;
  }
}
BENCHMARK(BM_SecdedEncodeDecode);

void BM_InjectionRun(benchmark::State& state) {
  fi::CampaignConfig config;
  config.workload = "saxpy";
  config.machine = arch::a100();
  auto golden = fi::Campaign::golden_run(config);
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fi::Campaign::run_single(
        config, golden.value().profile, golden.value().dyn_instrs, index++));
  }
  state.counters["runs/s"] =
      benchmark::Counter(static_cast<double>(index),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_InjectionRun)->Unit(benchmark::kMillisecond);

void BM_WorkloadGoldenCheck(benchmark::State& state) {
  for (auto _ : state) {
    auto workload = wl::make_workload("conv2d");
    sim::Device device(arch::a100());
    auto spec = workload->setup(device);
    (void)device.launch(workload->program(), spec.value().grid,
                        spec.value().block, spec.value().params);
    benchmark::DoNotOptimize(workload->check(device));
  }
}
BENCHMARK(BM_WorkloadGoldenCheck)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
