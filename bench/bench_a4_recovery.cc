// R-A4 (mitigation): detection-and-recovery — how much of the failure
// surface trap-and-retry relaunch claws back, and what detector feeds it.
//
// For each arch and workload, five strategies under IOV single-bit faults:
//   baseline      no recovery (the R-F1/F2 view)
//   retry         checkpoint-restore relaunch of detected errors (DUE/Hang)
//   retry/stuck   same budget, but the fault is re-injected every attempt —
//                 the control showing retry only helps transient upsets
//   abft+retry    ABFT checksum kernel (traps on corrupt output) + retry
//   swift+retry   SWIFT duplication (traps before corrupt stores) + retry
//
// Reported per strategy: pre-recovery failure split, what recovery converted
// to correct reruns, the relaunch-count distribution, and the dynamic-
// instruction overhead versus one golden run.
#include "bench_util.h"

#include <map>

#include "harden/swift.h"
#include "recover/abft.h"

namespace {

using namespace gfi;

struct Strategy {
  const char* label;
  std::string workload;
  fi::FaultPersistence persist;
  u32 retries;
};

/// "1x42 2x7 4x1" — how many injections consumed k launches.
std::string histogram_cell(const analysis::RecoverySummary& summary) {
  std::string out;
  for (std::size_t k = 0; k < summary.attempts_histogram.size(); ++k) {
    if (summary.attempts_histogram[k] == 0) continue;
    if (!out.empty()) out += ' ';
    out += std::to_string(k + 1) + "x" +
           std::to_string(summary.attempts_histogram[k]);
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  benchx::banner("R-A4",
                 "Trap-and-retry recovery: DUE/Hang reclaimed, by detector "
                 "(A100 vs H100)");
  harden::register_hardened_workloads();
  recover::register_abft_workloads();

  // The ABFT variants are hand-built sibling kernels, not a transform, so
  // the pairing is explicit.
  const std::map<std::string, std::string> abft_for = {
      {"gemm", "gemm_abft"},
      {"reduce_u32", "reduce_abft"},
      {"spmv", "spmv_abft"},
  };

  Table table("Recovery by strategy (IOV single-bit, 3 retries)");
  table.set_header({"arch", "workload", "strategy", "SDC", "DUE+Hang",
                    "recovered", "unrecov", "converted", "attempts",
                    "dyn overhead", "injections"});

  for (const auto& machine : {arch::a100(), arch::h100()}) {
    for (const auto& [base, abft] : abft_for) {
      const std::vector<Strategy> strategies = {
          {"baseline", base, fi::FaultPersistence::kTransient, 0},
          {"retry", base, fi::FaultPersistence::kTransient, 3},
          {"retry/stuck", base, fi::FaultPersistence::kStuckAt, 3},
          {"abft+retry", abft, fi::FaultPersistence::kTransient, 3},
          {"swift+retry", base + "_swift", fi::FaultPersistence::kTransient,
           3},
      };
      for (const Strategy& strategy : strategies) {
        if (!wl::make_workload(strategy.workload)) continue;  // not hardenable
        auto config = benchx::base_config(strategy.workload, machine);
        config.model.persistence = strategy.persist;
        config.max_retries = strategy.retries;
        const auto result = benchx::must_run(config);
        const auto summary = analysis::summarize_recovery(result);
        // Pre-recovery failures: what an unprotected run of this kernel
        // would have lost (SDCs included — only a detector converts those).
        u64 pre_failures = 0;
        for (const fi::InjectionRecord& record : result.records) {
          if (record.pre_recovery == fi::Outcome::kSdc ||
              record.pre_recovery == fi::Outcome::kDue ||
              record.pre_recovery == fi::Outcome::kHang) {
            ++pre_failures;
          }
        }
        const f64 converted =
            pre_failures ? static_cast<f64>(summary.recovered) /
                               static_cast<f64>(pre_failures)
                         : 0.0;
        table.add_row({machine.name, base, strategy.label,
                       analysis::rate_cell(result, fi::Outcome::kSdc),
                       std::to_string(summary.detected),
                       std::to_string(summary.recovered),
                       std::to_string(summary.unrecoverable),
                       Table::pct(converted),
                       histogram_cell(summary),
                       Table::fmt(summary.dyn_overhead, 2) + "x",
                       std::to_string(result.records.size())});
      }
    }
  }
  benchx::emit(table, "r_a4_recovery");

  std::printf(
      "Expected shape: under transient faults retry converts essentially all\n"
      "DUE/Hang into recovered-correct runs at a modest relaunch overhead;\n"
      "under stuck-at faults it converts none (every relaunch re-traps).\n"
      "ABFT and SWIFT widen the recoverable pool by first turning SDCs into\n"
      "detected traps — recovery is only as good as its detector.\n");
  return 0;
}
