// R-F4: statistical convergence — SDC-rate estimate and 95% CI half-width
// as a function of injection count, against the Leveugle sample-size
// planner. Justifies the ~1000-2000 injections per campaign every FI paper
// uses. Computed from prefixes of one large campaign (same sites).
#include "bench_util.h"

#include "common/stats.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F4", "SDC-rate convergence vs number of injections");

  auto config = benchx::base_config("saxpy", arch::a100());
  config.num_injections = std::max<std::size_t>(benchx::injections() * 4, 1600);
  auto result = benchx::must_run(config);

  Table table("Prefix estimates of P(SDC), saxpy/A100, IOV single-bit");
  table.set_header({"injections", "P(SDC)", "95% CI", "half-width (pp)"});
  for (std::size_t n : {50u, 100u, 200u, 400u, 800u, 1600u}) {
    if (n > result.records.size()) break;
    std::size_t sdc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (result.records[i].outcome == fi::Outcome::kSdc) ++sdc;
    }
    const auto ci = stats::wilson_interval(sdc, n);
    table.add_row({std::to_string(n),
                   Table::pct(static_cast<f64>(sdc) / static_cast<f64>(n)),
                   "[" + Table::pct(ci.lo) + ", " + Table::pct(ci.hi) + "]",
                   Table::fmt(ci.half_width() * 100.0, 2)});
  }
  benchx::emit(table, "r_f4_convergence");

  Table planner("Leveugle sample-size planner (95% confidence, p=0.5)");
  planner.set_header({"margin", "required n (infinite population)"});
  for (f64 margin : {0.05, 0.031, 0.022, 0.01}) {
    planner.add_row({Table::pct(margin, 1),
                     std::to_string(stats::required_sample_size(
                         1ULL << 40, margin))});
  }
  benchx::emit(planner, "r_f4_planner");

  std::printf(
      "Expected shape: the half-width shrinks like 1/sqrt(n); ~1000-2000\n"
      "injections give a 2-3pp margin, matching the planner.\n");
  return 0;
}
