// R-T5: simulator timing sanity — dynamic instructions, model cycles and
// wall-model time per workload on A100 vs H100, with the H100 speedup.
// Grounds the cross-arch comparison: the H100 model is faster across the
// board, as the silicon is.
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-T5", "Golden-run timing per workload, A100 vs H100");

  Table table("Golden launch statistics");
  table.set_header({"workload", "warp instrs", "A100 cycles", "A100 us",
                    "H100 cycles", "H100 us", "H100 speedup"});
  for (const std::string& name : benchx::suite()) {
    auto a_gold = fi::Campaign::golden_run(benchx::base_config(name, arch::a100()));
    auto h_gold = fi::Campaign::golden_run(benchx::base_config(name, arch::h100()));
    if (!a_gold.is_ok() || !h_gold.is_ok()) return 1;
    sim::LaunchResult a_time, h_time;
    a_time.cycles = a_gold.value().cycles;
    h_time.cycles = h_gold.value().cycles;
    const f64 a_us = a_time.time_us(arch::a100());
    const f64 h_us = h_time.time_us(arch::h100());
    table.add_row({name, std::to_string(a_gold.value().dyn_instrs),
                   std::to_string(a_gold.value().cycles),
                   Table::fmt(a_us, 2), std::to_string(h_gold.value().cycles),
                   Table::fmt(h_us, 2), Table::fmt(a_us / h_us, 2) + "x"});
  }
  benchx::emit(table, "r_t5_timing");
  return 0;
}
