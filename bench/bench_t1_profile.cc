// R-T1: dynamic opcode-group mix per workload (the profiling table).
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-T1", "Dynamic instruction mix per workload (A100 model)");

  Table table("Per-group share of dynamic warp instructions");
  table.set_header(analysis::profile_header());
  for (const std::string& name : benchx::suite()) {
    auto config = benchx::base_config(name, arch::a100());
    auto golden = fi::Campaign::golden_run(config);
    if (!golden.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   golden.status().to_string().c_str());
      return 1;
    }
    table.add_row(analysis::profile_row(name, golden.value().profile));
  }
  benchx::emit(table, "r_t1_profile");
  return 0;
}
