// R-A3 (mitigation): SWIFT software hardening — SDC-to-DUE conversion and
// its cost. For each hardenable workload: baseline vs hardened outcome
// rates under IOV single-bit injection, plus static and dynamic overhead.
#include "bench_util.h"

#include "harden/swift.h"

int main() {
  using namespace gfi;
  benchx::banner("R-A3",
                 "SWIFT instruction duplication: detection coverage and "
                 "overhead (A100)");
  harden::register_hardened_workloads();

  Table table("Baseline vs SWIFT-hardened (IOV single-bit)");
  table.set_header({"workload", "variant", "SDC", "DUE", "Masked*",
                    "dyn overhead", "injections"});

  Table cost("Static transform cost");
  cost.set_header({"workload", "orig instrs", "hardened", "duplicated",
                   "checks", "static overhead"});

  for (const std::string& name :
       {std::string("saxpy"), std::string("gemm"), std::string("conv2d"),
        std::string("scan"), std::string("spmv")}) {
    auto inner = wl::make_workload(name);
    harden::SwiftStats stats;
    auto hardened_program = harden::swift_harden(inner->program(), &stats);
    if (!hardened_program.is_ok()) continue;
    cost.add_row({name, std::to_string(stats.original_instrs),
                  std::to_string(stats.hardened_instrs),
                  std::to_string(stats.duplicated),
                  std::to_string(stats.checks),
                  Table::fmt(stats.static_overhead(), 2) + "x"});

    u64 base_dyn = 0;
    for (const std::string& variant : {name, name + "_swift"}) {
      auto config = benchx::base_config(variant, arch::a100());
      auto result = benchx::must_run(config);
      if (variant == name) base_dyn = result.golden_dyn_instrs;
      const f64 masked = result.rate(fi::Outcome::kMasked) +
                         result.rate(fi::Outcome::kMaskedTolerated) +
                         result.rate(fi::Outcome::kNotActivated);
      const f64 overhead =
          base_dyn ? static_cast<f64>(result.golden_dyn_instrs) /
                         static_cast<f64>(base_dyn)
                   : 1.0;
      table.add_row({name, variant == name ? "baseline" : "SWIFT",
                     analysis::rate_cell(result, fi::Outcome::kSdc),
                     analysis::rate_cell(result, fi::Outcome::kDue),
                     Table::pct(masked), Table::fmt(overhead, 2) + "x",
                     std::to_string(result.records.size())});
    }
  }
  benchx::emit(table, "r_a3_swift");
  benchx::emit(cost, "r_a3_swift_cost");

  std::printf(
      "Expected shape: hardening slashes SDC and converts it into DUEs at\n"
      "the pre-store checks, at roughly 2-3x dynamic overhead — the classic\n"
      "SWIFT trade. The residual SDCs are the known sphere-of-replication\n"
      "holes: faults striking a value at its entry point (a load result\n"
      "before the shadow copy executes) are duplicated consistently into\n"
      "both copies, and unprotected predicates/control remain exposed.\n");
  return 0;
}
