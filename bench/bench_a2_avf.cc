// R-A2 (ablation/validation): composed-vs-direct vulnerability. Estimate a
// program's SDC rate from per-group campaign rates weighted by its dynamic
// instruction mix, and compare with the directly measured unfiltered rate —
// the internal-consistency check SASSIFI performs for its methodology.
#include "bench_util.h"

#include "analysis/compare.h"

int main() {
  using namespace gfi;
  benchx::banner("R-A2",
                 "Composed (per-group x mix) vs direct SDC rate, A100");

  Table table("IOV single-bit SDC: composed estimate vs direct measurement");
  table.set_header({"workload", "composed", "direct", "abs diff (pp)"});

  const std::size_t per_group = std::max<std::size_t>(benchx::injections() / 2, 80);
  for (const std::string& workload :
       {std::string("gemm"), std::string("conv2d"), std::string("saxpy"),
        std::string("spmv")}) {
    auto base = benchx::base_config(workload, arch::a100());
    auto golden = fi::Campaign::golden_run(base);
    if (!golden.is_ok()) return 1;

    // Per-group campaigns over the groups IOV can strike.
    analysis::GroupRates rates;
    for (int g = 0; g < sim::kInstrGroupCount; ++g) {
      const auto group = static_cast<sim::InstrGroup>(g);
      if (!fi::mode_targets_group(fi::InjectionMode::kIov, group)) continue;
      if (golden.value().profile.group_warp_count(group) == 0) continue;
      auto config = base;
      config.group = group;
      config.num_injections = per_group;
      auto result = fi::Campaign::run(config);
      if (!result.is_ok()) continue;
      rates.set(group, result.value().rate(fi::Outcome::kSdc));
    }
    const f64 composed =
        analysis::composed_rate(golden.value().profile, rates);

    auto direct_config = base;
    direct_config.num_injections =
        std::max<std::size_t>(benchx::injections(), 300);
    auto direct = benchx::must_run(direct_config);
    const f64 measured = direct.rate(fi::Outcome::kSdc);

    table.add_row({workload, Table::pct(composed), Table::pct(measured),
                   Table::fmt(std::abs(composed - measured) * 100.0, 2)});
  }
  benchx::emit(table, "r_a2_avf");
  std::printf(
      "Expected shape: composed and direct agree to within a few points\n"
      "(sampling noise) — uniform site sampling really is equivalent to\n"
      "mix-weighted per-group sampling.\n");
  return 0;
}
