// R-F1: outcome distribution (Masked/SDC/DUE/Hang/...) per workload under
// IOV single-bit injection on the A100 model.
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F1",
                 "Outcome distribution per workload — A100, IOV single-bit");

  Table table("A100 outcome distribution (95% Wilson CI)");
  table.set_header(analysis::outcome_header());
  for (const std::string& name : benchx::suite()) {
    auto result = benchx::must_run(benchx::base_config(name, arch::a100()));
    table.add_row(analysis::outcome_row(name, result));
  }
  benchx::emit(table, "r_f1_outcomes_a100");
  return 0;
}
