// Shared helpers for the evaluation-reproduction bench binaries.
//
// Each binary regenerates one table/figure of the reconstructed evaluation
// plan (see DESIGN.md): it runs the campaigns it needs, prints the rows as
// an aligned ASCII table, and writes a CSV next to the working directory.
//
// GFI_INJECTIONS=<n> scales every campaign's injection count (default 300)
// so the suite can be run quickly (100) or to tighter CIs (2000).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/report.h"
#include "arch/arch.h"
#include "common/table.h"
#include "fi/campaign.h"
#include "workloads/workload.h"

namespace gfi::benchx {

/// Injection count per campaign, overridable via GFI_INJECTIONS.
inline std::size_t injections() {
  if (const char* env = std::getenv("GFI_INJECTIONS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 300;
}

/// Runs a campaign, aborting the bench with a message on harness errors.
inline fi::CampaignResult must_run(fi::CampaignConfig config) {
  auto result = fi::Campaign::run(config);
  if (!result.is_ok()) {
    std::fprintf(stderr, "campaign '%s' failed: %s\n",
                 config.workload.c_str(),
                 result.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(result).take();
}

/// Baseline campaign config: IOV single-bit, seeded, sized by injections().
inline fi::CampaignConfig base_config(const std::string& workload,
                                      const sim::MachineConfig& machine) {
  fi::CampaignConfig config;
  config.workload = workload;
  config.machine = machine;
  config.model = {fi::InjectionMode::kIov, fi::BitFlipModel::kSingle};
  config.num_injections = injections();
  config.seed = 0xD0E5;
  return config;
}

/// The workloads every per-workload table iterates, in reporting order.
inline std::vector<std::string> suite() { return wl::workload_names(); }

/// Prints the experiment banner.
inline void banner(const char* exp_id, const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s — %s\n", exp_id, title);
  std::printf("(simulated GPUs; shapes comparable to the paper, absolute numbers are not)\n");
  std::printf("==================================================================\n\n");
}

/// Prints the table and also writes `<csv_name>.csv` in the working dir.
inline void emit(Table& table, const std::string& csv_name) {
  table.print();
  std::printf("\n");
  (void)table.write_csv(csv_name + ".csv");
}

}  // namespace gfi::benchx
