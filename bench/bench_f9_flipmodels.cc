// R-F9: flip-model sweep — outcome distribution as the corruption widens
// from a single bit flip to double flips, random values, and zeroed values
// (the SASSIFI bit-flip-model axis).
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F9", "Outcome vs bit-flip model (IOV, A100)");

  Table table("gemm + softmax, per flip model");
  table.set_header({"workload", "flip model", "Masked", "Tolerated", "SDC",
                    "DUE", "injections"});

  for (const std::string& workload :
       {std::string("gemm"), std::string("softmax")}) {
    for (fi::BitFlipModel flip :
         {fi::BitFlipModel::kSingle, fi::BitFlipModel::kDouble,
          fi::BitFlipModel::kRandomValue, fi::BitFlipModel::kZeroValue}) {
      auto config = benchx::base_config(workload, arch::a100());
      config.model.flip = flip;
      auto result = benchx::must_run(config);
      table.add_row({workload, fi::to_string(flip),
                     analysis::rate_cell(result, fi::Outcome::kMasked),
                     Table::pct(result.rate(fi::Outcome::kMaskedTolerated)),
                     analysis::rate_cell(result, fi::Outcome::kSdc),
                     analysis::rate_cell(result, fi::Outcome::kDue),
                     std::to_string(result.records.size())});
    }
  }
  benchx::emit(table, "r_f9_flipmodels");

  std::printf(
      "Expected shape: masking shrinks monotonically as the corruption\n"
      "widens (single -> double -> random value); zero-value lands between\n"
      "(zeros are often semantically benign: additive identities, padding).\n");
  return 0;
}
