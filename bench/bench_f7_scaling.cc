// R-F7: cross-arch exposure — outcome rates and timing as SM count scales
// from half-A100 to H100, holding the fault model fixed. Per-injection
// vulnerability stays flat (it is architecture-level state that is struck);
// what changes with the machine is timing/exposure.
#include "bench_util.h"

#include "sassim/device.h"
#include "sassim/kernel_builder.h"

namespace {

/// ALU-loop microkernel on a 4096-CTA grid: enough blocks to saturate every
/// SM array in the sweep, so machine cycles actually reflect SM count.
gfi::u64 saturated_cycles(const gfi::sim::MachineConfig& machine) {
  using namespace gfi;
  sim::KernelBuilder b("saturate");
  b.mov_u32(2, sim::Operand::imm_u(0));
  b.mov_u32(4, sim::Operand::imm_u(1));
  b.uniform_loop(2, sim::Operand::imm_u(64), 1, [&] {
    b.imad_u32(4, sim::Operand::reg(4), sim::Operand::imm_u(33),
               sim::Operand::imm_u(7));
  });
  b.exit_();
  auto program = b.build();
  sim::Device device(machine);
  auto launch = device.launch(program.value(), Dim3(4096), Dim3(128), {});
  return launch.value().cycles;
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-F7",
                 "Exposure scaling: outcome rates and cycles vs SM count");

  struct Variant {
    const char* label;
    sim::MachineConfig config;
  };
  sim::MachineConfig half_a100 = arch::a100();
  half_a100.name = "A100/2";
  half_a100.num_sms /= 2;
  sim::MachineConfig half_h100 = arch::h100();
  half_h100.name = "H100/2";
  half_h100.num_sms /= 2;
  const Variant variants[] = {
      {"A100/2 (54 SM)", half_a100},
      {"A100 (108 SM)", arch::a100()},
      {"H100/2 (66 SM)", half_h100},
      {"H100 (132 SM)", arch::h100()},
  };

  Table saturation("Saturated 4096-CTA microkernel: machine throughput");
  saturation.set_header({"machine", "cycles", "time (us)"});
  for (const Variant& variant : variants) {
    const u64 cycles = saturated_cycles(variant.config);
    sim::LaunchResult timing;
    timing.cycles = cycles;
    saturation.add_row({variant.label, std::to_string(cycles),
                        Table::fmt(timing.time_us(variant.config), 2)});
  }
  benchx::emit(saturation, "r_f7_saturation");

  Table table("gemm + stencil pooled, IOV single-bit");
  table.set_header({"machine", "workload", "cycles", "time (us)", "SDC",
                    "DUE+Hang"});
  for (const Variant& variant : variants) {
    for (const std::string& workload :
         {std::string("gemm"), std::string("stencil")}) {
      auto config = benchx::base_config(workload, variant.config);
      auto result = benchx::must_run(config);
      sim::LaunchResult timing;
      timing.cycles = result.golden_cycles;
      table.add_row(
          {variant.label, workload, std::to_string(result.golden_cycles),
           Table::fmt(timing.time_us(variant.config), 2),
           analysis::rate_cell(result, fi::Outcome::kSdc),
           Table::pct(result.rate(fi::Outcome::kDue) +
                      result.rate(fi::Outcome::kHang))});
    }
  }
  benchx::emit(table, "r_f7_scaling");

  std::printf(
      "Expected shape: on the saturated grid, cycles drop with SM count and\n"
      "wall time additionally with clock (H100 fastest). The study kernels'\n"
      "grids are smaller than any SM array in the sweep, so their cycle\n"
      "counts are flat and only the clock separates the machines. The\n"
      "per-injection SDC/DUE rates stay within CI across machines — the\n"
      "\"two GPUs\" differ in exposure time, not per-instruction\n"
      "vulnerability.\n");
  return 0;
}
