// R-F3: bit-position sensitivity — P(SDC) as a function of which bit of the
// destination value is flipped, for FP32 (conv2d) and integer (scan)
// destinations. Classic result: FP32 mantissa LSBs mostly mask, exponent
// and sign bits drive SDCs; integer bits matter roughly uniformly.
#include "bench_util.h"

namespace {

using namespace gfi;

void sweep(const std::string& workload, sim::InstrGroup group,
           const char* label, Table& table) {
  const std::size_t per_bit = std::max<std::size_t>(benchx::injections() / 6, 30);
  for (u32 bit = 0; bit < 32; ++bit) {
    auto config = benchx::base_config(workload, arch::a100());
    config.group = group;
    config.fixed_bit = bit;
    config.num_injections = per_bit;
    config.seed = 0xB17 + bit;
    auto result = benchx::must_run(config);
    const f64 sdc = result.rate(fi::Outcome::kSdc);
    const auto ci = result.rate_interval(fi::Outcome::kSdc);
    std::string bar(static_cast<std::size_t>(sdc * 40.0), '#');
    table.add_row({label, std::to_string(bit), Table::pct(sdc),
                   Table::fmt(ci.half_width() * 100.0, 1), bar});
  }
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-F3",
                 "P(SDC) vs flipped destination bit (A100, IOV fixed-bit)");

  Table table("Bit-position sensitivity");
  table.set_header({"dest type", "bit", "P(SDC)", "±pp", ""});
  sweep("conv2d", sim::InstrGroup::kFp32Fma, "FP32 (conv2d FFMA)", table);
  sweep("scan", sim::InstrGroup::kInt, "INT (scan IADD/MOV)", table);
  benchx::emit(table, "r_f3_bitpos");

  std::printf(
      "Expected shape: FP32 rows rise from near-zero at bit 0 (mantissa\n"
      "LSB) to high P(SDC) in the exponent field (bits 23-30); the sign\n"
      "bit (31) is high as well. Integer rows are flatter.\n");
  return 0;
}
