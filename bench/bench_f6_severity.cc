// R-F6: SDC severity — distribution of log10(max relative output error)
// given an SDC, per workload. Shows that "an SDC" spans ten orders of
// magnitude of damage, the long-tail result of the severity literature.
#include "bench_util.h"

#include <cmath>

#include "common/histogram.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F6", "SDC severity: log10(relative error) given SDC");

  Table table("SDC severity percentiles per workload (A100, IOV single-bit)");
  table.set_header({"workload", "#SDC", "p10 log10(err)", "p50", "p90",
                    "%NaN/Inf"});

  for (const std::string& workload :
       {std::string("gemm"), std::string("softmax"), std::string("layernorm"),
        std::string("conv2d")}) {
    auto config = benchx::base_config(workload, arch::a100());
    config.num_injections = std::max<std::size_t>(benchx::injections(), 400);
    auto result = benchx::must_run(config);

    std::vector<f64> logs;
    std::size_t nonfinite = 0;
    std::size_t sdc = 0;
    Histogram hist(-8.0, 8.0, 16);
    for (const auto& record : result.records) {
      if (record.outcome != fi::Outcome::kSdc) continue;
      ++sdc;
      if (!std::isfinite(record.error_magnitude)) {
        ++nonfinite;
        continue;
      }
      const f64 log_err = std::log10(std::max(record.error_magnitude, 1e-30));
      logs.push_back(log_err);
      hist.add(log_err);
    }
    if (sdc == 0) continue;
    table.add_row(
        {workload, std::to_string(sdc),
         logs.empty() ? "-" : Table::fmt(stats::percentile(logs, 10), 2),
         logs.empty() ? "-" : Table::fmt(stats::percentile(logs, 50), 2),
         logs.empty() ? "-" : Table::fmt(stats::percentile(logs, 90), 2),
         Table::pct(static_cast<f64>(nonfinite) / static_cast<f64>(sdc))});
    if (workload == "gemm") {
      std::printf("gemm SDC severity histogram (log10 relative error):\n%s\n",
                  hist.to_ascii(40).c_str());
    }
  }
  benchx::emit(table, "r_f6_severity");

  std::printf(
      "Expected shape: severity spans many decades — mantissa-bit flips\n"
      "produce tiny relative errors, exponent/sign flips produce errors\n"
      "of 1e0..1e30 or non-finite outputs; normalizing kernels (softmax)\n"
      "compress severity relative to raw GEMM.\n");
  return 0;
}
