// R-S1 (static analysis): static masked-fraction lower bound vs measured
// masked rate, and the campaign wall-clock saved by pruning statically-dead
// injection sites. For each arch x workload we build the PruneMap once, then
// run the same seeded IOV campaign twice — simulating every injection vs
// crediting dead/inert sites analytically — and require the outcome tables
// to be identical before reporting the speedup.
#include "bench_util.h"

#include <chrono>

#include "analysis/static_bound.h"
#include "harden/swift.h"
#include "sa/ace.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace gfi;
  // SWIFT variants carry the bulk of the statically-dead sites (duplicated
  // computation whose detector values the checker never consumes), so the
  // suite includes them alongside the base kernels.
  harden::register_hardened_workloads();
  benchx::banner("R-S1",
                 "Static dead-site lower bound vs dynamic masked rate");

  Table table("IOV single-bit: static bound, measured rate, pruning speedup");
  table.set_header({"arch", "workload", "eligible", "dead%", "inert%",
                    "static_lb", "dyn_masked", "pruned", "speedup"});

  bool mismatch = false;
  bool bound_violation = false;
  const std::pair<const char*, sim::MachineConfig> archs[] = {
      {"a100", arch::a100()}, {"h100", arch::h100()}};
  for (const auto& [arch_name, machine] : archs) {
    for (const std::string& workload : benchx::suite()) {
      auto base = benchx::base_config(workload, machine);

      auto map = fi::Campaign::build_prune_map(base);
      if (!map.is_ok()) {
        std::fprintf(stderr, "%s/%s: prune map failed: %s\n", arch_name,
                     workload.c_str(), map.status().to_string().c_str());
        return 1;
      }
      const auto bound = analysis::static_masked_bound(
          map.value(), base.model.mode, base.group);

      auto start = std::chrono::steady_clock::now();
      auto unpruned = benchx::must_run(base);
      const double unpruned_s = seconds_since(start);

      auto pruned_config = base;
      pruned_config.prune_dead_sites = true;
      start = std::chrono::steady_clock::now();
      auto pruned = benchx::must_run(pruned_config);
      const double pruned_s = seconds_since(start);

      if (pruned.outcome_counts != unpruned.outcome_counts) {
        std::fprintf(stderr,
                     "SOUNDNESS VIOLATION: %s/%s pruned and unpruned outcome "
                     "tables differ\n",
                     arch_name, workload.c_str());
        mismatch = true;
      }
      // Masked + MaskedTolerated: dead-site strikes never reach an output,
      // so they classify as whichever of the two the golden check reports.
      const f64 dyn_masked = unpruned.rate(fi::Outcome::kMasked) +
                             unpruned.rate(fi::Outcome::kMaskedTolerated);
      if (bound.masked_lower_bound() > dyn_masked + 1e-12) {
        std::fprintf(stderr,
                     "BOUND VIOLATION: %s/%s static %.4f > dynamic %.4f\n",
                     arch_name, workload.c_str(), bound.masked_lower_bound(),
                     dyn_masked);
        bound_violation = true;
      }

      const f64 eligible = static_cast<f64>(bound.eligible);
      table.add_row(
          {arch_name, workload, std::to_string(bound.eligible),
           Table::pct(eligible == 0 ? 0.0 : static_cast<f64>(bound.dead) /
                                                eligible),
           Table::pct(eligible == 0 ? 0.0 : static_cast<f64>(bound.inert) /
                                                eligible),
           Table::pct(bound.masked_lower_bound()), Table::pct(dyn_masked),
           std::to_string(pruned.pruned),
           pruned_s > 0.0 ? Table::fmt(unpruned_s / pruned_s, 2) + "x" : "-"});
    }
  }
  benchx::emit(table, "r_s1_static");
  std::printf(
      "Expected shape: static_lb <= dyn_masked for every row (dead sites are\n"
      "a provable subset of masked injections); speedup grows with the\n"
      "dead+inert fraction, since those injections skip simulation entirely.\n");
  if (mismatch || bound_violation) return 1;
  return 0;
}
