// R-T2: per-instruction-group SDC/DUE/Masked rates with 95% CIs, per arch —
// the SASSIFI-style vulnerability-by-opcode-class table. Results are pooled
// over a representative workload set so every group has dynamic coverage.
#include "bench_util.h"

namespace {

using namespace gfi;

/// Groups reported in the table, with the injection mode that targets them.
struct GroupSpec {
  sim::InstrGroup group;
  fi::InjectionMode mode;
};

const GroupSpec kGroups[] = {
    {sim::InstrGroup::kInt, fi::InjectionMode::kIov},
    {sim::InstrGroup::kIntMad, fi::InjectionMode::kIov},
    {sim::InstrGroup::kFp32, fi::InjectionMode::kIov},
    {sim::InstrGroup::kFp32Fma, fi::InjectionMode::kIov},
    {sim::InstrGroup::kFp64, fi::InjectionMode::kIov},
    {sim::InstrGroup::kLoad, fi::InjectionMode::kIov},
    {sim::InstrGroup::kAtomic, fi::InjectionMode::kIov},
    {sim::InstrGroup::kWarpComm, fi::InjectionMode::kIov},
    {sim::InstrGroup::kMma, fi::InjectionMode::kIov},
    {sim::InstrGroup::kSetp, fi::InjectionMode::kPred},
    {sim::InstrGroup::kStore, fi::InjectionMode::kIoa},
};

/// Workloads that collectively exercise every group.
std::vector<std::string> pool_for(sim::InstrGroup group) {
  switch (group) {
    case sim::InstrGroup::kFp64:
      return {"stencil"};
    case sim::InstrGroup::kMma:
      return {"gemm_hmma"};
    case sim::InstrGroup::kAtomic:
      return {"histogram", "reduce_u32"};
    case sim::InstrGroup::kWarpComm:
      return {"dotprod"};
    default:
      return {"gemm", "conv2d", "bitonic_sort", "spmv", "softmax"};
  }
}

void merge(fi::CampaignResult& into, const fi::CampaignResult& from) {
  into.records.insert(into.records.end(), from.records.begin(),
                      from.records.end());
  for (int o = 0; o < fi::kOutcomeCount; ++o) {
    into.outcome_counts[o] += from.outcome_counts[o];
  }
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-T2",
                 "SDC/DUE/Masked per instruction group, A100 vs H100 "
                 "(pooled workloads)");

  const std::size_t per_campaign = std::max<std::size_t>(benchx::injections() / 3, 50);

  Table table("Per-group outcome rates (95% Wilson CI)");
  table.set_header({"group", "mode", "arch", "SDC", "DUE+Hang", "Masked*",
                    "injections"});

  for (const GroupSpec& spec : kGroups) {
    for (arch::GpuModel model : arch::study_models()) {
      fi::CampaignResult pooled;
      bool any = false;
      for (const std::string& workload : pool_for(spec.group)) {
        auto config = benchx::base_config(workload, arch::config_for(model));
        config.model.mode = spec.mode;
        config.group = spec.group;
        config.num_injections = per_campaign;
        auto result = fi::Campaign::run(config);
        if (!result.is_ok()) continue;  // workload lacks this group: skip
        merge(pooled, result.value());
        any = true;
      }
      if (!any) continue;
      const f64 due =
          pooled.rate(fi::Outcome::kDue) + pooled.rate(fi::Outcome::kHang);
      const f64 masked = pooled.rate(fi::Outcome::kMasked) +
                         pooled.rate(fi::Outcome::kMaskedTolerated) +
                         pooled.rate(fi::Outcome::kDetectedCorrected) +
                         pooled.rate(fi::Outcome::kNotActivated);
      table.add_row({sim::group_name(spec.group), fi::to_string(spec.mode),
                     arch::model_name(model),
                     analysis::rate_cell(pooled, fi::Outcome::kSdc),
                     Table::pct(due), Table::pct(masked),
                     std::to_string(pooled.records.size())});
    }
  }
  benchx::emit(table, "r_t2_groups");
  std::printf(
      "*Masked pools bitwise-masked, tolerated, ECC-corrected and\n"
      " never-activated runs.\n"
      "Expected shape: address-feeding groups (IMAD, STORE/IOA) are DUE-\n"
      "heavy; pure dataflow (FP32/FMA/MMA) is SDC-heavy; compares (SETP)\n"
      "split between masked and control-flow-induced failures.\n");
  return 0;
}
