// R-A1 (ablation): does TF32 input rounding change tensor-core resilience?
// Runs the HMMA GEMM with tensor_core_tf32 on (product behaviour) and off
// (hypothetical full-FP32 tensor core) and compares SDC/Masked rates with a
// two-proportion z-test.
#include "bench_util.h"

#include "analysis/compare.h"

int main() {
  using namespace gfi;
  benchx::banner("R-A1", "Ablation: TF32 input rounding in the tensor core");

  fi::CampaignResult results[2];
  const char* labels[2] = {"TF32 (product)", "FP32 (ablated)"};
  for (int variant = 0; variant < 2; ++variant) {
    auto config = benchx::base_config("gemm_hmma", arch::a100());
    config.machine.tensor_core_tf32 = (variant == 0);
    config.group = sim::InstrGroup::kMma;
    config.num_injections = std::max<std::size_t>(benchx::injections(), 400);
    results[variant] = benchx::must_run(config);
  }

  Table table("HMMA-destination injections, gemm_hmma/A100");
  table.set_header({"tensor core", "SDC", "Masked", "Tolerated", "DUE",
                    "injections"});
  for (int variant = 0; variant < 2; ++variant) {
    const auto& r = results[variant];
    table.add_row({labels[variant],
                   analysis::rate_cell(r, fi::Outcome::kSdc),
                   analysis::rate_cell(r, fi::Outcome::kMasked),
                   Table::pct(r.rate(fi::Outcome::kMaskedTolerated)),
                   Table::pct(r.rate(fi::Outcome::kDue)),
                   std::to_string(r.records.size())});
  }
  benchx::emit(table, "r_a1_tf32");

  const auto test =
      analysis::compare_outcome(results[0], results[1], fi::Outcome::kSdc);
  std::printf("SDC-rate z-test TF32 vs FP32: z=%.2f p=%.4f -> %s\n",
              test.z, test.p_value,
              test.significant() ? "DIFFERENT" : "within noise");
  std::printf(
      "Expected shape: destination (accumulator) flips are NOT masked by\n"
      "TF32 (rounding applies to inputs of the *next* MMA, and D fragments\n"
      "feed stores directly), so the two variants should sit within noise —\n"
      "the rounding ablation matters for input-side faults, not output\n"
      "ones. A significant difference would indicate input-side masking.\n");
  return 0;
}
