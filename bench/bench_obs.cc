// Microbenchmarks of the observability hot path (google-benchmark): the
// cached-handle counter increment, the name-lookup increment, latency
// histogram observation, and snapshotting a campaign-sized registry. These
// bound the per-injection telemetry tax — the counters must stay invisible
// next to a multi-millisecond simulated launch.
#include <benchmark/benchmark.h>

#include "obs/heartbeat.h"
#include "obs/registry.h"

namespace {

using namespace gfi;

void BM_CounterIncCachedHandle(benchmark::State& state) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("events");
  for (auto _ : state) {
    counter.inc();
  }
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterIncCachedHandle);

void BM_CounterIncByNameLookup(benchmark::State& state) {
  obs::Registry registry;
  for (auto _ : state) {
    registry.counter("events").inc();
  }
}
BENCHMARK(BM_CounterIncByNameLookup);

void BM_CounterIncContended(benchmark::State& state) {
  static obs::Registry registry;
  obs::Counter& counter = registry.counter("contended");
  for (auto _ : state) {
    counter.inc();
  }
}
BENCHMARK(BM_CounterIncContended)->Threads(8)->UseRealTime();

void BM_HistogramObserve(benchmark::State& state) {
  obs::Registry registry;
  obs::LatencyHistogram& histogram =
      registry.histogram("lat_ms", 0.0, 500.0, 50);
  f64 value = 0.0;
  for (auto _ : state) {
    histogram.observe(value);
    value += 0.37;
    if (value > 500.0) value = 0.0;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_RegistrySnapshot(benchmark::State& state) {
  // Roughly the instrument count a campaign registers.
  obs::Registry registry;
  for (int i = 0; i < 20; ++i) {
    registry.counter("counter." + std::to_string(i)).inc(u64(i) * 17);
  }
  auto& histogram = registry.histogram("lat_ms", 0.0, 500.0, 50);
  for (int i = 0; i < 1000; ++i) histogram.observe(static_cast<f64>(i % 500));
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot());
  }
}
BENCHMARK(BM_RegistrySnapshot);

void BM_SnapshotToJson(benchmark::State& state) {
  obs::Registry registry;
  for (int i = 0; i < 20; ++i) {
    registry.counter("counter." + std::to_string(i)).inc(u64(i) * 17);
  }
  auto& histogram = registry.histogram("lat_ms", 0.0, 500.0, 50);
  for (int i = 0; i < 1000; ++i) histogram.observe(static_cast<f64>(i % 500));
  const obs::Snapshot snapshot = registry.snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot.to_json());
  }
}
BENCHMARK(BM_SnapshotToJson);

void BM_HeartbeatLineSerialize(benchmark::State& state) {
  obs::HeartbeatState beat;
  beat.workload = "gemm";
  beat.arch = "A100";
  beat.shard_index = 2;
  beat.shard_count = 8;
  beat.done = 12345;
  beat.total = 100000;
  beat.outcome_counts.assign(9, 1234);
  beat.elapsed_s = 321.5;
  beat.rate = 38.4;
  beat.eta_s = 2282.6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::heartbeat_line(beat));
  }
}
BENCHMARK(BM_HeartbeatLineSerialize);

}  // namespace

BENCHMARK_MAIN();
