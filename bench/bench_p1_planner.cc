// R-P1: adaptive campaign planner — sequential early stopping vs the fixed
// Leveugle budget, paired by seed so the adaptive run is a prefix of the
// fixed one. Reports where the stopping rule halted, the injections saved,
// and (the CI gate) that both estimates of every tracked outcome agree
// within their combined 95% half-widths. A second table shows the
// post-stratified estimator over Neyman group allocation against the plain
// pooled rate.
#include "bench_util.h"

#include <cmath>

#include "common/stats.h"
#include "fi/planner.h"

namespace {

constexpr gfi::f64 kHalfWidth = 0.07;  ///< declared CI target, each side

gfi::fi::CampaignConfig adaptive_config(const gfi::fi::CampaignConfig& fixed) {
  gfi::fi::CampaignConfig config = fixed;
  config.planner.stop.target_half_width = kHalfWidth;
  config.planner.checkpoint_every =
      std::max<gfi::u64>(fixed.num_injections / 12, 10);
  config.planner.stop.min_samples =
      std::max<std::size_t>(fixed.num_injections / 6, 20);
  return config;
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-P1",
                 "Adaptive planner: sequential stopping vs fixed budget");

  bool agree = true;
  Table table("Paired-seed campaigns, IOV single-bit, A100");
  table.set_header({"workload", "outcome", "fixed", "adaptive", "stopped_at",
                    "fixed_n", "savings_pct"});
  for (const std::string workload : {"vecadd", "saxpy"}) {
    auto fixed = benchx::base_config(workload, arch::a100());
    // Budget generously past the point the ±7pp target needs, so the
    // stopping rule has room to pay off.
    fixed.num_injections = std::max<std::size_t>(benchx::injections() * 2, 80);
    auto fixed_run = benchx::must_run(fixed);

    auto adaptive_run = benchx::must_run(adaptive_config(fixed));
    const u64 stopped_at = adaptive_run.effective_injections;
    const f64 savings =
        100.0 * (1.0 - static_cast<f64>(stopped_at) /
                           static_cast<f64>(fixed.num_injections));

    for (fi::Outcome outcome : fi::planner_tracked_outcomes()) {
      const f64 pf = fixed_run.rate(outcome);
      const f64 pa = adaptive_run.rate(outcome);
      const f64 hf = fixed_run.rate_interval(outcome).half_width();
      const f64 ha = adaptive_run.rate_interval(outcome).half_width();
      // The CI gate: the early-stopped estimate must land where the full
      // budget says the rate is, within what both CIs allow.
      if (std::fabs(pa - pf) > ha + hf) {
        std::fprintf(stderr,
                     "DISAGREEMENT %s/%s: fixed %.4f±%.4f vs adaptive "
                     "%.4f±%.4f\n",
                     workload.c_str(), fi::to_string(outcome), pf, hf, pa, ha);
        agree = false;
      }
      table.add_row({workload, fi::to_string(outcome),
                     analysis::rate_cell(fixed_run, outcome),
                     analysis::rate_cell(adaptive_run, outcome),
                     std::to_string(stopped_at),
                     std::to_string(fixed.num_injections),
                     Table::fmt(savings, 1)});
    }
  }
  benchx::emit(table, "r_p1_planner");

  // Stratified allocation: Neyman-reweighted group sampling with the
  // design-unbiased post-stratified estimator vs the naive pooled rate.
  auto strat = benchx::base_config("saxpy", arch::a100());
  strat.num_injections = std::max<std::size_t>(benchx::injections() * 2, 80);
  strat.planner.stratify = true;
  strat.planner.checkpoint_every =
      std::max<u64>(strat.num_injections / 12, 10);
  auto strat_run = benchx::must_run(strat);
  Table strata("Neyman group allocation, saxpy/A100");
  strata.set_header({"outcome", "pooled", "post-stratified"});
  for (fi::Outcome outcome : fi::planner_tracked_outcomes()) {
    strata.add_row({fi::to_string(outcome),
                    analysis::rate_cell(strat_run, outcome),
                    analysis::poststratified_cell(strat_run, outcome)});
  }
  benchx::emit(strata, "r_p1_stratified");

  if (!agree) {
    std::fprintf(stderr,
                 "adaptive estimates disagree with the fixed budget beyond "
                 "the declared half-widths\n");
    return 1;
  }
  std::printf(
      "Expected shape: the stopping rule halts once every tracked CI fits\n"
      "inside ±%.0fpp, well short of the fixed budget; both estimates agree\n"
      "within their combined half-widths (asserted, exit 1 otherwise).\n",
      kHalfWidth * 100.0);
  return 0;
}
