// R-F2: outcome distribution per workload on the H100 model, plus the
// H100-vs-A100 delta in uncorrected failure rate (SDC+DUE+Hang) — the
// headline "story of two GPUs" comparison.
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F2",
                 "Outcome distribution per workload — H100, IOV single-bit, "
                 "with A100 delta");

  Table table("H100 outcome distribution (95% Wilson CI)");
  table.set_header(analysis::outcome_header());

  Table delta("Uncorrected failure rate (SDC+DUE+Hang): A100 vs H100");
  delta.set_header({"workload", "A100", "H100", "delta (pp)"});

  for (const std::string& name : benchx::suite()) {
    auto h100 = benchx::must_run(benchx::base_config(name, arch::h100()));
    auto a100 = benchx::must_run(benchx::base_config(name, arch::a100()));
    table.add_row(analysis::outcome_row(name, h100));

    const f64 fr_a = analysis::uncorrected_failure_rate(a100);
    const f64 fr_h = analysis::uncorrected_failure_rate(h100);
    delta.add_row({name, Table::pct(fr_a), Table::pct(fr_h),
                   Table::fmt((fr_h - fr_a) * 100.0, 2)});
  }
  benchx::emit(table, "r_f2_outcomes_h100");
  benchx::emit(delta, "r_f2_failure_delta");

  std::printf(
      "Expected shape: per-instruction vulnerability is nearly identical on\n"
      "the two GPUs — the deltas should sit within the confidence intervals.\n"
      "Cross-arch differences come from exposure (occupancy, structure\n"
      "sizes) and pipeline mix, not from a per-instruction weakness.\n");
  return 0;
}
