// R-T4: control-flow and address corruption — predicate flips (PRED mode)
// and store-address flips (IOA mode) on control-heavy workloads: hang and
// DUE rates dominate here, unlike dataflow IOV injections.
#include "bench_util.h"

int main() {
  using namespace gfi;
  benchx::banner("R-T4",
                 "Predicate-flip and store-address injections (A100 model)");

  Table table("Control/address corruption outcomes");
  table.set_header({"workload", "mode", "SDC", "DUE", "Hang", "Masked*",
                    "injections"});

  const std::vector<std::string> workloads = {"bitonic_sort", "pathfinder",
                                              "stencil", "vecadd", "spmv"};
  for (const std::string& workload : workloads) {
    for (fi::InjectionMode mode :
         {fi::InjectionMode::kPred, fi::InjectionMode::kIoa}) {
      auto config = benchx::base_config(workload, arch::a100());
      config.model.mode = mode;
      auto result = fi::Campaign::run(config);
      if (!result.is_ok()) continue;  // no eligible instructions
      const auto& campaign = result.value();
      const f64 masked = campaign.rate(fi::Outcome::kMasked) +
                         campaign.rate(fi::Outcome::kMaskedTolerated) +
                         campaign.rate(fi::Outcome::kNotActivated);
      table.add_row({workload, fi::to_string(mode),
                     analysis::rate_cell(campaign, fi::Outcome::kSdc),
                     analysis::rate_cell(campaign, fi::Outcome::kDue),
                     analysis::rate_cell(campaign, fi::Outcome::kHang),
                     Table::pct(masked),
                     std::to_string(campaign.records.size())});
    }
  }
  benchx::emit(table, "r_t4_ctrl_addr");

  std::printf(
      "*Masked pools bitwise-masked, tolerated, and never-activated runs.\n"
      "Expected shape: IOA shows the highest DUE rates (corrupted\n"
      "addresses leave the allocation arena or break alignment); PRED\n"
      "flips on loop-controlling compares produce the suite's hangs and\n"
      "barrier-divergence DUEs.\n");
  return 0;
}
