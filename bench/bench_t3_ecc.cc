// R-T3: ECC effectiveness — outcome rates for register-file and memory
// injections with SECDED on vs off, single- and double-bit upsets.
#include "bench_util.h"

namespace {

using namespace gfi;

void run_case(const char* structure, fi::InjectionMode mode,
              fi::BitFlipModel flip, bool ecc_on,
              const std::string& workload, Table& table) {
  auto config = benchx::base_config(workload, arch::a100());
  config.model = {mode, flip};
  config.machine.rf_ecc =
      ecc_on ? ecc::EccMode::kSecded : ecc::EccMode::kDisabled;
  config.machine.dram_ecc =
      ecc_on ? ecc::EccMode::kSecded : ecc::EccMode::kDisabled;
  auto result = benchx::must_run(config);
  table.add_row({structure, fi::to_string(flip), ecc_on ? "on" : "off",
                 workload,
                 analysis::rate_cell(result, fi::Outcome::kDetectedCorrected),
                 analysis::rate_cell(result, fi::Outcome::kDue),
                 analysis::rate_cell(result, fi::Outcome::kSdc),
                 Table::pct(result.rate(fi::Outcome::kMasked) +
                            result.rate(fi::Outcome::kMaskedTolerated) +
                            result.rate(fi::Outcome::kNotActivated))});
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-T3", "ECC effectiveness: RF and DRAM/L2, SECDED on vs off");

  Table table("ECC on/off outcome rates (A100 model)");
  table.set_header({"structure", "upset", "ECC", "workload", "Corrected",
                    "DUE", "SDC", "Masked"});

  for (const std::string& workload : {std::string("gemm"), std::string("spmv"),
                                      std::string("stencil")}) {
    for (bool ecc_on : {true, false}) {
      run_case("regfile", fi::InjectionMode::kRf, fi::BitFlipModel::kSingle,
               ecc_on, workload, table);
      run_case("regfile", fi::InjectionMode::kRf, fi::BitFlipModel::kDouble,
               ecc_on, workload, table);
      run_case("dram/l2", fi::InjectionMode::kMemory,
               fi::BitFlipModel::kSingle, ecc_on, workload, table);
      run_case("dram/l2", fi::InjectionMode::kMemory,
               fi::BitFlipModel::kDouble, ecc_on, workload, table);
    }
  }
  benchx::emit(table, "r_t3_ecc");

  std::printf(
      "Expected shape: with SECDED on, single-bit upsets are fully\n"
      "corrected (zero SDC) and double-bit upsets become DUEs when\n"
      "consumed; with ECC off the same single-bit upsets turn into SDCs\n"
      "or masked outcomes and double-bit DUEs disappear into silence.\n");
  return 0;
}
