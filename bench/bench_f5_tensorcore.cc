// R-F5: tensor-core vs SIMT GEMM resilience — IOV injections into the
// FFMA stream of the SIMT GEMM vs the HMMA stream of the tensor-core GEMM,
// on both GPU models, plus SDC severity for each.
#include "bench_util.h"

#include <cmath>

namespace {

using namespace gfi;

void run_case(const std::string& workload, sim::InstrGroup group,
              arch::GpuModel model, Table& table) {
  auto config = benchx::base_config(workload, arch::config_for(model));
  config.group = group;
  auto result = benchx::must_run(config);

  // Median SDC magnitude (relative error) among SDC records.
  std::vector<f64> magnitudes;
  for (const auto& record : result.records) {
    if (record.outcome == fi::Outcome::kSdc &&
        std::isfinite(record.error_magnitude)) {
      magnitudes.push_back(record.error_magnitude);
    }
  }
  const f64 median = magnitudes.empty()
                         ? 0.0
                         : stats::percentile(magnitudes, 50);
  table.add_row({workload, sim::group_name(group), arch::model_name(model),
                 analysis::rate_cell(result, fi::Outcome::kSdc),
                 analysis::rate_cell(result, fi::Outcome::kMasked),
                 Table::pct(result.rate(fi::Outcome::kMaskedTolerated)),
                 magnitudes.empty() ? "-" : Table::fmt(median, 4),
                 std::to_string(result.records.size())});
}

}  // namespace

int main() {
  using namespace gfi;
  benchx::banner("R-F5",
                 "Tensor-core (HMMA/TF32) vs SIMT (FFMA/FP32) GEMM "
                 "resilience");

  Table table("GEMM arithmetic-stream injections");
  table.set_header({"workload", "group", "arch", "SDC", "Masked", "Tolerated",
                    "median |rel err| of SDCs", "injections"});
  for (arch::GpuModel model : arch::study_models()) {
    run_case("gemm", sim::InstrGroup::kFp32Fma, model, table);
    run_case("gemm_hmma", sim::InstrGroup::kMma, model, table);
  }
  benchx::emit(table, "r_f5_tensorcore");

  std::printf(
      "Expected shape: an HMMA destination flip corrupts an accumulator\n"
      "that feeds a whole output tile, so tensor-core SDCs are fewer in\n"
      "count per injection (fragment bits may land in mantissa positions\n"
      "that TF32 rounding masks on the *next* chunk's inputs) but larger\n"
      "in blast radius; SIMT FFMA flips corrupt exactly one C element.\n");
  return 0;
}
