// R-S2 (static analysis, bit level): per-bit-position static masked lower
// bound vs the measured masked rate of fixed-bit campaigns, and the extra
// injections dead-*bit* pruning credits over dead-*site* pruning (R-S1).
//
// Part A: for each arch x workload x bit position we compute the static
// bound (fraction of eligible sites where a flip of footprint bit b is
// provably Masked, sa/bitlive.h) and run the same seeded IOV campaign with
// --bit=b; soundness requires bound <= measured masked rate on every row.
//
// Part B: the same seeded campaign run three ways — unpruned, --prune=dead,
// --prune=dead-bits — must produce identical outcome tables, with
// dead-bits crediting strictly more injections than dead over the SWIFT
// suite (partially-dead detector values are exactly what bit-liveness
// refines below whole registers).
#include "bench_util.h"

#include "analysis/static_bound.h"
#include "harden/swift.h"
#include "sa/ace.h"

int main() {
  using namespace gfi;
  harden::register_hardened_workloads();
  benchx::banner("R-S2",
                 "Bit-liveness: per-bit static bounds and dead-bit pruning");

  // Workloads with a meaningful partial-dead population (narrow loads,
  // shift-scaled addresses, SWIFT detector chains) plus their context.
  const std::vector<std::string> bit_suite = {
      "histogram", "histogram_swift", "bitonic_sort_swift", "mc_pi_swift"};
  const u32 bit_positions[] = {0, 6, 15, 31};
  const std::pair<const char*, sim::MachineConfig> archs[] = {
      {"a100", arch::a100()}, {"h100", arch::h100()}};

  bool bound_violation = false;
  Table bit_table(
      "IOV fixed-bit sweeps: static per-bit bound vs measured masked rate");
  bit_table.set_header({"arch", "workload", "bit", "eligible", "partial",
                        "static_bit_lb", "dyn_masked"});
  for (const auto& [arch_name, machine] : archs) {
    for (const std::string& workload : bit_suite) {
      auto base = benchx::base_config(workload, machine);
      auto map = fi::Campaign::build_prune_map(base);
      if (!map.is_ok()) {
        std::fprintf(stderr, "%s/%s: prune map failed: %s\n", arch_name,
                     workload.c_str(), map.status().to_string().c_str());
        return 1;
      }
      const auto bound = analysis::static_masked_bound(
          map.value(), base.model.mode, base.group);
      for (u32 bit : bit_positions) {
        const f64 static_lb = analysis::static_bit_masked_bound(
            map.value(), base.model.mode, base.group, bit);
        auto config = base;
        config.fixed_bit = bit;
        auto result = benchx::must_run(config);
        const f64 dyn_masked = result.rate(fi::Outcome::kMasked) +
                               result.rate(fi::Outcome::kMaskedTolerated);
        if (static_lb > dyn_masked + 1e-12) {
          std::fprintf(
              stderr,
              "BOUND VIOLATION: %s/%s bit %u static %.4f > dynamic %.4f\n",
              arch_name, workload.c_str(), bit, static_lb, dyn_masked);
          bound_violation = true;
        }
        bit_table.add_row({arch_name, workload, std::to_string(bit),
                           std::to_string(bound.eligible),
                           std::to_string(bound.partial),
                           Table::pct(static_lb), Table::pct(dyn_masked)});
      }
    }
  }
  benchx::emit(bit_table, "r_s2_bitlive");

  // Part B: dead-bit pruning must stay bit-identical to the unpruned
  // campaign while crediting strictly more than dead-site pruning across
  // the SWIFT suite.
  const std::vector<std::string> swift_suite = {
      "bitonic_sort_swift", "histogram_swift", "scan_swift",
      "reduce_u32_swift"};
  bool mismatch = false;
  u64 total_injections = 0;
  u64 total_dead = 0;
  u64 total_bits = 0;
  Table prune_table(
      "SWIFT suite: injections credited by --prune=dead vs --prune=dead-bits");
  prune_table.set_header({"arch", "workload", "injections", "pruned_dead",
                          "pruned_dead_bits", "extra"});
  for (const auto& [arch_name, machine] : archs) {
    for (const std::string& workload : swift_suite) {
      auto base = benchx::base_config(workload, machine);
      auto unpruned = benchx::must_run(base);

      auto dead_config = base;
      dead_config.prune_dead_sites = true;
      auto dead = benchx::must_run(dead_config);

      auto bits_config = base;
      bits_config.prune_dead_sites = true;
      bits_config.prune_dead_bits = true;
      auto bits = benchx::must_run(bits_config);

      if (dead.outcome_counts != unpruned.outcome_counts ||
          bits.outcome_counts != unpruned.outcome_counts) {
        std::fprintf(stderr,
                     "SOUNDNESS VIOLATION: %s/%s pruned and unpruned outcome "
                     "tables differ\n",
                     arch_name, workload.c_str());
        mismatch = true;
      }
      if (bits.pruned < dead.pruned) {
        std::fprintf(stderr,
                     "PRUNE REGRESSION: %s/%s dead-bits credited %llu < dead "
                     "%llu\n",
                     arch_name, workload.c_str(),
                     static_cast<unsigned long long>(bits.pruned),
                     static_cast<unsigned long long>(dead.pruned));
        mismatch = true;
      }
      total_injections += base.num_injections;
      total_dead += dead.pruned;
      total_bits += bits.pruned;
      prune_table.add_row(
          {arch_name, workload, std::to_string(base.num_injections),
           std::to_string(dead.pruned), std::to_string(bits.pruned),
           std::to_string(bits.pruned - dead.pruned)});
    }
  }
  benchx::emit(prune_table, "r_s2_bitlive_prune");
  std::printf(
      "Aggregate SWIFT prune rate: dead %.2f%%, dead-bits %.2f%% "
      "(%llu extra credited injections)\n",
      100.0 * static_cast<f64>(total_dead) /
          static_cast<f64>(total_injections),
      100.0 * static_cast<f64>(total_bits) /
          static_cast<f64>(total_injections),
      static_cast<unsigned long long>(total_bits - total_dead));
  std::printf(
      "Expected shape: static_bit_lb <= dyn_masked on every Part A row, and\n"
      "dead-bits > dead in aggregate — the bit analysis can only refine the\n"
      "register-level result, never contradict it.\n");
  if (total_bits <= total_dead) {
    std::fprintf(stderr,
                 "IMPROVEMENT VIOLATION: dead-bits pruning credited no more "
                 "than dead-site pruning over the SWIFT suite\n");
    return 1;
  }
  if (mismatch || bound_violation) return 1;
  return 0;
}
