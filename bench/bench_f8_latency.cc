// R-F8: error-detection latency — for DUE outcomes, how many dynamic warp
// instructions elapse between the strike and the trap. Short latencies mean
// cheap containment; long ones bound how stale a checkpoint can be.
#include "bench_util.h"

#include <cmath>

#include "common/histogram.h"
#include "common/stats.h"

int main() {
  using namespace gfi;
  benchx::banner("R-F8",
                 "DUE detection latency (dynamic warp instrs from strike to "
                 "trap), A100");

  Table table("Detection-latency percentiles per workload (IOV single-bit)");
  table.set_header({"workload", "#DUE", "p10", "p50", "p90", "max"});

  Histogram pooled(0.0, 6.0, 12);  // log10(latency+1)
  for (const std::string& workload :
       {std::string("gemm"), std::string("spmv"), std::string("bitonic_sort"),
        std::string("softmax"), std::string("stencil")}) {
    auto config = benchx::base_config(workload, arch::a100());
    config.num_injections = std::max<std::size_t>(benchx::injections(), 300);
    auto result = benchx::must_run(config);

    std::vector<f64> latencies;
    for (const auto& record : result.records) {
      if (record.outcome != fi::Outcome::kDue || !record.effect.activated) {
        continue;
      }
      // dyn_instrs at abort minus the strike index = instructions the
      // corruption stayed latent.
      if (record.dyn_instrs < record.effect.struck_dyn_index) continue;
      const f64 latency = static_cast<f64>(record.dyn_instrs -
                                           record.effect.struck_dyn_index);
      latencies.push_back(latency);
      pooled.add(std::log10(latency + 1.0));
    }
    if (latencies.empty()) continue;
    table.add_row({workload, std::to_string(latencies.size()),
                   Table::fmt(stats::percentile(latencies, 10), 0),
                   Table::fmt(stats::percentile(latencies, 50), 0),
                   Table::fmt(stats::percentile(latencies, 90), 0),
                   Table::fmt(stats::percentile(latencies, 100), 0)});
  }
  benchx::emit(table, "r_f8_latency");

  std::printf("Pooled log10(latency+1) histogram:\n%s\n",
              pooled.to_ascii(40).c_str());
  std::printf(
      "Expected shape: most address-corruption DUEs fire within a handful\n"
      "of instructions (the very next memory access consumes the bad\n"
      "address); the tail comes from values parked in registers across\n"
      "loop iterations before being used for addressing.\n");
  return 0;
}
