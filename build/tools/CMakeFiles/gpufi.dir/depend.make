# Empty dependencies file for gpufi.
# This may be replaced when dependencies are built.
