file(REMOVE_RECURSE
  "CMakeFiles/gpufi.dir/gpufi_cli.cc.o"
  "CMakeFiles/gpufi.dir/gpufi_cli.cc.o.d"
  "gpufi"
  "gpufi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpufi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
