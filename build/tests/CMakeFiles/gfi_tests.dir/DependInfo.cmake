
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch_analysis.cc" "tests/CMakeFiles/gfi_tests.dir/test_arch_analysis.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_arch_analysis.cc.o.d"
  "/root/repo/tests/test_campaign.cc" "tests/CMakeFiles/gfi_tests.dir/test_campaign.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_campaign.cc.o.d"
  "/root/repo/tests/test_common.cc" "tests/CMakeFiles/gfi_tests.dir/test_common.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_common.cc.o.d"
  "/root/repo/tests/test_ecc.cc" "tests/CMakeFiles/gfi_tests.dir/test_ecc.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_ecc.cc.o.d"
  "/root/repo/tests/test_exec_alu.cc" "tests/CMakeFiles/gfi_tests.dir/test_exec_alu.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_exec_alu.cc.o.d"
  "/root/repo/tests/test_exec_edge.cc" "tests/CMakeFiles/gfi_tests.dir/test_exec_edge.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_exec_edge.cc.o.d"
  "/root/repo/tests/test_exec_memory.cc" "tests/CMakeFiles/gfi_tests.dir/test_exec_memory.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_exec_memory.cc.o.d"
  "/root/repo/tests/test_exec_simt.cc" "tests/CMakeFiles/gfi_tests.dir/test_exec_simt.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_exec_simt.cc.o.d"
  "/root/repo/tests/test_harden.cc" "tests/CMakeFiles/gfi_tests.dir/test_harden.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_harden.cc.o.d"
  "/root/repo/tests/test_injector.cc" "tests/CMakeFiles/gfi_tests.dir/test_injector.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_injector.cc.o.d"
  "/root/repo/tests/test_isa_program.cc" "tests/CMakeFiles/gfi_tests.dir/test_isa_program.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_isa_program.cc.o.d"
  "/root/repo/tests/test_memory.cc" "tests/CMakeFiles/gfi_tests.dir/test_memory.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_memory.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/gfi_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_smoke.cc" "tests/CMakeFiles/gfi_tests.dir/test_smoke.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_smoke.cc.o.d"
  "/root/repo/tests/test_tools.cc" "tests/CMakeFiles/gfi_tests.dir/test_tools.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_tools.cc.o.d"
  "/root/repo/tests/test_workload_props.cc" "tests/CMakeFiles/gfi_tests.dir/test_workload_props.cc.o" "gcc" "tests/CMakeFiles/gfi_tests.dir/test_workload_props.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fi/CMakeFiles/gfi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gfi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/gfi_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gfi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gfi_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sassim/CMakeFiles/gfi_sassim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gfi_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
