# Empty compiler generated dependencies file for gfi_tests.
# This may be replaced when dependencies are built.
