
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sassim/isa.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/isa.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/isa.cc.o.d"
  "/root/repo/src/sassim/kernel_builder.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/kernel_builder.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/kernel_builder.cc.o.d"
  "/root/repo/src/sassim/machine_config.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/machine_config.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/machine_config.cc.o.d"
  "/root/repo/src/sassim/memory.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/memory.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/memory.cc.o.d"
  "/root/repo/src/sassim/profiler.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/profiler.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/profiler.cc.o.d"
  "/root/repo/src/sassim/program.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/program.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/program.cc.o.d"
  "/root/repo/src/sassim/simulator.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/simulator.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/simulator.cc.o.d"
  "/root/repo/src/sassim/tracer.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/tracer.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/tracer.cc.o.d"
  "/root/repo/src/sassim/trap.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/trap.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/trap.cc.o.d"
  "/root/repo/src/sassim/warp.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/warp.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/warp.cc.o.d"
  "/root/repo/src/sassim/xid.cc" "src/sassim/CMakeFiles/gfi_sassim.dir/xid.cc.o" "gcc" "src/sassim/CMakeFiles/gfi_sassim.dir/xid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gfi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gfi_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
