file(REMOVE_RECURSE
  "CMakeFiles/gfi_sassim.dir/isa.cc.o"
  "CMakeFiles/gfi_sassim.dir/isa.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/kernel_builder.cc.o"
  "CMakeFiles/gfi_sassim.dir/kernel_builder.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/machine_config.cc.o"
  "CMakeFiles/gfi_sassim.dir/machine_config.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/memory.cc.o"
  "CMakeFiles/gfi_sassim.dir/memory.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/profiler.cc.o"
  "CMakeFiles/gfi_sassim.dir/profiler.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/program.cc.o"
  "CMakeFiles/gfi_sassim.dir/program.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/simulator.cc.o"
  "CMakeFiles/gfi_sassim.dir/simulator.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/tracer.cc.o"
  "CMakeFiles/gfi_sassim.dir/tracer.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/trap.cc.o"
  "CMakeFiles/gfi_sassim.dir/trap.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/warp.cc.o"
  "CMakeFiles/gfi_sassim.dir/warp.cc.o.d"
  "CMakeFiles/gfi_sassim.dir/xid.cc.o"
  "CMakeFiles/gfi_sassim.dir/xid.cc.o.d"
  "libgfi_sassim.a"
  "libgfi_sassim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_sassim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
