file(REMOVE_RECURSE
  "libgfi_sassim.a"
)
