# Empty dependencies file for gfi_sassim.
# This may be replaced when dependencies are built.
