file(REMOVE_RECURSE
  "libgfi_workloads.a"
)
