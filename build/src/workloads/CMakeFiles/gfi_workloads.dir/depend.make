# Empty dependencies file for gfi_workloads.
# This may be replaced when dependencies are built.
