
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/conv2d.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/conv2d.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/conv2d.cc.o.d"
  "/root/repo/src/workloads/gemm.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/gemm.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/gemm.cc.o.d"
  "/root/repo/src/workloads/gemm_hmma.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/gemm_hmma.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/gemm_hmma.cc.o.d"
  "/root/repo/src/workloads/histogram.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/histogram.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/histogram.cc.o.d"
  "/root/repo/src/workloads/layernorm.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/layernorm.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/layernorm.cc.o.d"
  "/root/repo/src/workloads/mc_pi.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/mc_pi.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/mc_pi.cc.o.d"
  "/root/repo/src/workloads/nbody.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/nbody.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/nbody.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/pathfinder.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/pathfinder.cc.o.d"
  "/root/repo/src/workloads/reduce.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/reduce.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/reduce.cc.o.d"
  "/root/repo/src/workloads/scan.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/scan.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/scan.cc.o.d"
  "/root/repo/src/workloads/softmax.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/softmax.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/softmax.cc.o.d"
  "/root/repo/src/workloads/sort.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/sort.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/sort.cc.o.d"
  "/root/repo/src/workloads/spmv.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/spmv.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/spmv.cc.o.d"
  "/root/repo/src/workloads/stencil.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/stencil.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/stencil.cc.o.d"
  "/root/repo/src/workloads/vecadd.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/vecadd.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/vecadd.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/gfi_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/gfi_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sassim/CMakeFiles/gfi_sassim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gfi_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gfi_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
