file(REMOVE_RECURSE
  "CMakeFiles/gfi_analysis.dir/compare.cc.o"
  "CMakeFiles/gfi_analysis.dir/compare.cc.o.d"
  "CMakeFiles/gfi_analysis.dir/report.cc.o"
  "CMakeFiles/gfi_analysis.dir/report.cc.o.d"
  "libgfi_analysis.a"
  "libgfi_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
