file(REMOVE_RECURSE
  "libgfi_analysis.a"
)
