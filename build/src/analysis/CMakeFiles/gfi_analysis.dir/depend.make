# Empty dependencies file for gfi_analysis.
# This may be replaced when dependencies are built.
