file(REMOVE_RECURSE
  "libgfi_harden.a"
)
