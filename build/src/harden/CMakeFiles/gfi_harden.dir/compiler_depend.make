# Empty compiler generated dependencies file for gfi_harden.
# This may be replaced when dependencies are built.
