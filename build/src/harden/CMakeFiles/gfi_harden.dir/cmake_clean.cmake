file(REMOVE_RECURSE
  "CMakeFiles/gfi_harden.dir/swift.cc.o"
  "CMakeFiles/gfi_harden.dir/swift.cc.o.d"
  "libgfi_harden.a"
  "libgfi_harden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_harden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
