file(REMOVE_RECURSE
  "libgfi_ecc.a"
)
