# Empty compiler generated dependencies file for gfi_ecc.
# This may be replaced when dependencies are built.
