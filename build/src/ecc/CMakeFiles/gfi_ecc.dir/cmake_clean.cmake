file(REMOVE_RECURSE
  "CMakeFiles/gfi_ecc.dir/protection.cc.o"
  "CMakeFiles/gfi_ecc.dir/protection.cc.o.d"
  "CMakeFiles/gfi_ecc.dir/secded.cc.o"
  "CMakeFiles/gfi_ecc.dir/secded.cc.o.d"
  "libgfi_ecc.a"
  "libgfi_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
