# Empty compiler generated dependencies file for gfi_fi.
# This may be replaced when dependencies are built.
