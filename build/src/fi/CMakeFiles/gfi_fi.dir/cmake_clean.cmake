file(REMOVE_RECURSE
  "CMakeFiles/gfi_fi.dir/campaign.cc.o"
  "CMakeFiles/gfi_fi.dir/campaign.cc.o.d"
  "CMakeFiles/gfi_fi.dir/fault_model.cc.o"
  "CMakeFiles/gfi_fi.dir/fault_model.cc.o.d"
  "CMakeFiles/gfi_fi.dir/injector.cc.o"
  "CMakeFiles/gfi_fi.dir/injector.cc.o.d"
  "libgfi_fi.a"
  "libgfi_fi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_fi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
