file(REMOVE_RECURSE
  "libgfi_fi.a"
)
