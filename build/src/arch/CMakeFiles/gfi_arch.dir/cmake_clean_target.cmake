file(REMOVE_RECURSE
  "libgfi_arch.a"
)
