# Empty compiler generated dependencies file for gfi_arch.
# This may be replaced when dependencies are built.
