file(REMOVE_RECURSE
  "CMakeFiles/gfi_arch.dir/arch.cc.o"
  "CMakeFiles/gfi_arch.dir/arch.cc.o.d"
  "libgfi_arch.a"
  "libgfi_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
