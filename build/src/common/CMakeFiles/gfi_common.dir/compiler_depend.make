# Empty compiler generated dependencies file for gfi_common.
# This may be replaced when dependencies are built.
