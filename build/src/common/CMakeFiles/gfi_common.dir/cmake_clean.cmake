file(REMOVE_RECURSE
  "CMakeFiles/gfi_common.dir/histogram.cc.o"
  "CMakeFiles/gfi_common.dir/histogram.cc.o.d"
  "CMakeFiles/gfi_common.dir/logging.cc.o"
  "CMakeFiles/gfi_common.dir/logging.cc.o.d"
  "CMakeFiles/gfi_common.dir/stats.cc.o"
  "CMakeFiles/gfi_common.dir/stats.cc.o.d"
  "CMakeFiles/gfi_common.dir/status.cc.o"
  "CMakeFiles/gfi_common.dir/status.cc.o.d"
  "CMakeFiles/gfi_common.dir/table.cc.o"
  "CMakeFiles/gfi_common.dir/table.cc.o.d"
  "CMakeFiles/gfi_common.dir/thread_pool.cc.o"
  "CMakeFiles/gfi_common.dir/thread_pool.cc.o.d"
  "libgfi_common.a"
  "libgfi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gfi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
