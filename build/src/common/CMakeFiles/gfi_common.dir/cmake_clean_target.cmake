file(REMOVE_RECURSE
  "libgfi_common.a"
)
