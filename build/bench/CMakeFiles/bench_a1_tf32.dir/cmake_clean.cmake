file(REMOVE_RECURSE
  "CMakeFiles/bench_a1_tf32.dir/bench_a1_tf32.cc.o"
  "CMakeFiles/bench_a1_tf32.dir/bench_a1_tf32.cc.o.d"
  "bench_a1_tf32"
  "bench_a1_tf32.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a1_tf32.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
