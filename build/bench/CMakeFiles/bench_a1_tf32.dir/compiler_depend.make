# Empty compiler generated dependencies file for bench_a1_tf32.
# This may be replaced when dependencies are built.
