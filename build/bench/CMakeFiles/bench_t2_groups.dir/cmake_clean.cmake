file(REMOVE_RECURSE
  "CMakeFiles/bench_t2_groups.dir/bench_t2_groups.cc.o"
  "CMakeFiles/bench_t2_groups.dir/bench_t2_groups.cc.o.d"
  "bench_t2_groups"
  "bench_t2_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t2_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
