# Empty dependencies file for bench_f8_latency.
# This may be replaced when dependencies are built.
