file(REMOVE_RECURSE
  "CMakeFiles/bench_f8_latency.dir/bench_f8_latency.cc.o"
  "CMakeFiles/bench_f8_latency.dir/bench_f8_latency.cc.o.d"
  "bench_f8_latency"
  "bench_f8_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f8_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
