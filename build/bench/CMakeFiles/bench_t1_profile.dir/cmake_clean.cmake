file(REMOVE_RECURSE
  "CMakeFiles/bench_t1_profile.dir/bench_t1_profile.cc.o"
  "CMakeFiles/bench_t1_profile.dir/bench_t1_profile.cc.o.d"
  "bench_t1_profile"
  "bench_t1_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t1_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
