# Empty compiler generated dependencies file for bench_t1_profile.
# This may be replaced when dependencies are built.
