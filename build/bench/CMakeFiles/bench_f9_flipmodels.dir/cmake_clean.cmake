file(REMOVE_RECURSE
  "CMakeFiles/bench_f9_flipmodels.dir/bench_f9_flipmodels.cc.o"
  "CMakeFiles/bench_f9_flipmodels.dir/bench_f9_flipmodels.cc.o.d"
  "bench_f9_flipmodels"
  "bench_f9_flipmodels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f9_flipmodels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
