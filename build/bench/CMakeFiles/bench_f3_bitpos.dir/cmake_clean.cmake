file(REMOVE_RECURSE
  "CMakeFiles/bench_f3_bitpos.dir/bench_f3_bitpos.cc.o"
  "CMakeFiles/bench_f3_bitpos.dir/bench_f3_bitpos.cc.o.d"
  "bench_f3_bitpos"
  "bench_f3_bitpos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f3_bitpos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
