# Empty dependencies file for bench_f5_tensorcore.
# This may be replaced when dependencies are built.
