file(REMOVE_RECURSE
  "CMakeFiles/bench_f5_tensorcore.dir/bench_f5_tensorcore.cc.o"
  "CMakeFiles/bench_f5_tensorcore.dir/bench_f5_tensorcore.cc.o.d"
  "bench_f5_tensorcore"
  "bench_f5_tensorcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f5_tensorcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
