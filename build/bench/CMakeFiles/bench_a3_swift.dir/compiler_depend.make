# Empty compiler generated dependencies file for bench_a3_swift.
# This may be replaced when dependencies are built.
