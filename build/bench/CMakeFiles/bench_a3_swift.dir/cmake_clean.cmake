file(REMOVE_RECURSE
  "CMakeFiles/bench_a3_swift.dir/bench_a3_swift.cc.o"
  "CMakeFiles/bench_a3_swift.dir/bench_a3_swift.cc.o.d"
  "bench_a3_swift"
  "bench_a3_swift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a3_swift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
