file(REMOVE_RECURSE
  "CMakeFiles/bench_f2_outcomes_h100.dir/bench_f2_outcomes_h100.cc.o"
  "CMakeFiles/bench_f2_outcomes_h100.dir/bench_f2_outcomes_h100.cc.o.d"
  "bench_f2_outcomes_h100"
  "bench_f2_outcomes_h100.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f2_outcomes_h100.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
