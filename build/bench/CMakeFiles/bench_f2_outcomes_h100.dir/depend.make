# Empty dependencies file for bench_f2_outcomes_h100.
# This may be replaced when dependencies are built.
