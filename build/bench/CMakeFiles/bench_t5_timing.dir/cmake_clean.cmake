file(REMOVE_RECURSE
  "CMakeFiles/bench_t5_timing.dir/bench_t5_timing.cc.o"
  "CMakeFiles/bench_t5_timing.dir/bench_t5_timing.cc.o.d"
  "bench_t5_timing"
  "bench_t5_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t5_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
