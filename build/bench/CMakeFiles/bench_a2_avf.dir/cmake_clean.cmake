file(REMOVE_RECURSE
  "CMakeFiles/bench_a2_avf.dir/bench_a2_avf.cc.o"
  "CMakeFiles/bench_a2_avf.dir/bench_a2_avf.cc.o.d"
  "bench_a2_avf"
  "bench_a2_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_a2_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
