
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_a2_avf.cc" "bench/CMakeFiles/bench_a2_avf.dir/bench_a2_avf.cc.o" "gcc" "bench/CMakeFiles/bench_a2_avf.dir/bench_a2_avf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fi/CMakeFiles/gfi_fi.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gfi_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gfi_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/gfi_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/harden/CMakeFiles/gfi_harden.dir/DependInfo.cmake"
  "/root/repo/build/src/sassim/CMakeFiles/gfi_sassim.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/gfi_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gfi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
