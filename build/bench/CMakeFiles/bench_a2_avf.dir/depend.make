# Empty dependencies file for bench_a2_avf.
# This may be replaced when dependencies are built.
