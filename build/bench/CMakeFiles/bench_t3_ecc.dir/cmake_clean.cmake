file(REMOVE_RECURSE
  "CMakeFiles/bench_t3_ecc.dir/bench_t3_ecc.cc.o"
  "CMakeFiles/bench_t3_ecc.dir/bench_t3_ecc.cc.o.d"
  "bench_t3_ecc"
  "bench_t3_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t3_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
