# Empty dependencies file for bench_t3_ecc.
# This may be replaced when dependencies are built.
