# Empty dependencies file for bench_f1_outcomes_a100.
# This may be replaced when dependencies are built.
