# Empty dependencies file for bench_t4_ctrl_addr.
# This may be replaced when dependencies are built.
