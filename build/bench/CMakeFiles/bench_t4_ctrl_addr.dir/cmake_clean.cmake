file(REMOVE_RECURSE
  "CMakeFiles/bench_t4_ctrl_addr.dir/bench_t4_ctrl_addr.cc.o"
  "CMakeFiles/bench_t4_ctrl_addr.dir/bench_t4_ctrl_addr.cc.o.d"
  "bench_t4_ctrl_addr"
  "bench_t4_ctrl_addr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_t4_ctrl_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
