# Empty compiler generated dependencies file for bench_f6_severity.
# This may be replaced when dependencies are built.
