file(REMOVE_RECURSE
  "CMakeFiles/bench_f6_severity.dir/bench_f6_severity.cc.o"
  "CMakeFiles/bench_f6_severity.dir/bench_f6_severity.cc.o.d"
  "bench_f6_severity"
  "bench_f6_severity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f6_severity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
